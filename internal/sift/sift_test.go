package sift

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// blobImage builds a synthetic image with Gaussian blobs at the given
// centres — a canonical SIFT test pattern with known keypoints.
func blobImage(w, h int, centers [][2]int, blobSigma float64) *Gray {
	img := NewGray(w, h)
	for _, c := range centers {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d2 := float64((x-c[0])*(x-c[0]) + (y-c[1])*(y-c[1]))
				img.Pix[y*w+x] += float32(math.Exp(-d2 / (2 * blobSigma * blobSigma)))
			}
		}
	}
	// Clamp to [0,1].
	for i, p := range img.Pix {
		if p > 1 {
			img.Pix[i] = 1
		}
	}
	return img
}

func TestGrayAtClampsBorders(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(0, 0, 0.5)
	g.Set(3, 2, 0.9)
	tests := []struct {
		x, y int
		want float32
	}{
		{-1, -1, 0.5},
		{0, 0, 0.5},
		{10, 10, 0.9},
		{3, 5, 0.9},
	}
	for _, tt := range tests {
		if got := g.At(tt.x, tt.y); got != tt.want {
			t.Errorf("At(%d,%d) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
	// Out-of-range Set is a no-op.
	g.Set(-1, 0, 1)
	g.Set(0, 99, 1)
	if g.At(0, 0) != 0.5 {
		t.Error("out-of-range Set modified the image")
	}
}

func TestDownsampleHalves(t *testing.T) {
	g := NewGray(8, 6)
	for i := range g.Pix {
		g.Pix[i] = float32(i)
	}
	d := g.Downsample()
	if d.W != 4 || d.H != 3 {
		t.Fatalf("Downsample = %dx%d, want 4x3", d.W, d.H)
	}
	if d.At(1, 1) != g.At(2, 2) {
		t.Errorf("Downsample pixel mismatch: %v vs %v", d.At(1, 1), g.At(2, 2))
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1.0, 1.6, 3.2} {
		k := gaussianKernel(sigma)
		if len(k)%2 != 1 {
			t.Errorf("sigma=%v: kernel length %d not odd", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("sigma=%v: kernel sums to %v, want 1", sigma, sum)
		}
		// Symmetry.
		for i := 0; i < len(k)/2; i++ {
			if k[i] != k[len(k)-1-i] {
				t.Errorf("sigma=%v: kernel not symmetric at %d", sigma, i)
			}
		}
	}
}

func TestBlurPreservesConstantImage(t *testing.T) {
	g := NewGray(16, 16)
	for i := range g.Pix {
		g.Pix[i] = 0.7
	}
	b := Blur(g, 1.6)
	for i, p := range b.Pix {
		if math.Abs(float64(p)-0.7) > 1e-4 {
			t.Fatalf("pixel %d = %v, want 0.7", i, p)
		}
	}
}

func TestBlurReducesVariance(t *testing.T) {
	// A checkerboard has maximal high-frequency energy; blurring must
	// strictly reduce its variance.
	g := NewGray(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if (x+y)%2 == 0 {
				g.Pix[y*32+x] = 1
			}
		}
	}
	variance := func(img *Gray) float64 {
		var mean float64
		for _, p := range img.Pix {
			mean += float64(p)
		}
		mean /= float64(len(img.Pix))
		var v float64
		for _, p := range img.Pix {
			d := float64(p) - mean
			v += d * d
		}
		return v / float64(len(img.Pix))
	}
	if vb, va := variance(g), variance(Blur(g, 1.0)); va >= vb {
		t.Errorf("blur did not reduce variance: %v -> %v", vb, va)
	}
}

func TestPyramidShape(t *testing.T) {
	img := blobImage(128, 128, [][2]int{{64, 64}}, 6)
	p := BuildPyramid(img, 0, 3, 1.6)
	if len(p.Octaves) < 3 {
		t.Fatalf("pyramid has %d octaves, want >= 3 for 128x128", len(p.Octaves))
	}
	for o, oct := range p.Octaves {
		if len(oct) != 6 { // s+3 with s=3
			t.Errorf("octave %d has %d levels, want 6", o, len(oct))
		}
		wantW := 128 >> o
		if oct[0].W != wantW {
			t.Errorf("octave %d width = %d, want %d", o, oct[0].W, wantW)
		}
	}
	dog := p.DoG()
	for o := range dog {
		if len(dog[o]) != 5 {
			t.Errorf("DoG octave %d has %d levels, want 5", o, len(dog[o]))
		}
	}
}

func TestDetectFindsBlobs(t *testing.T) {
	centers := [][2]int{{32, 32}, {96, 64}}
	img := blobImage(128, 128, centers, 5)
	kps := Detect(img, DefaultParams())
	if len(kps) == 0 {
		t.Fatal("no keypoints detected on blob image")
	}
	// At least one keypoint within 6px of each blob centre.
	for _, c := range centers {
		found := false
		for _, kp := range kps {
			if math.Hypot(kp.X-float64(c[0]), kp.Y-float64(c[1])) < 6 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no keypoint near blob at %v", c)
		}
	}
}

func TestDetectFlatImageEmpty(t *testing.T) {
	img := NewGray(64, 64)
	for i := range img.Pix {
		img.Pix[i] = 0.5
	}
	if kps := Detect(img, DefaultParams()); len(kps) != 0 {
		t.Errorf("flat image produced %d keypoints, want 0", len(kps))
	}
}

func TestDetectDeterministic(t *testing.T) {
	img := blobImage(96, 96, [][2]int{{48, 48}, {20, 70}}, 4)
	a := Detect(img, DefaultParams())
	b := Detect(img, DefaultParams())
	if !reflect.DeepEqual(a, b) {
		t.Error("Detect is not deterministic")
	}
}

func TestDescriptorNormalization(t *testing.T) {
	img := blobImage(96, 96, [][2]int{{48, 48}}, 5)
	kps := Detect(img, DefaultParams())
	if len(kps) == 0 {
		t.Fatal("no keypoints")
	}
	for _, kp := range kps {
		// The quantized descriptor's L2 norm must be bounded near 512
		// (the quantization scale) and non-zero.
		var sum float64
		for _, v := range kp.Descriptor {
			sum += float64(v) * float64(v)
		}
		norm := math.Sqrt(sum)
		if norm == 0 {
			t.Error("zero descriptor")
		}
		if norm > 600 {
			t.Errorf("descriptor norm %v too large", norm)
		}
		// Clamping: no single entry may dominate far above the 0.2
		// clamp times the 512 quantization (102) plus renormalization
		// headroom.
		for _, v := range kp.Descriptor {
			if v > 180 {
				t.Errorf("descriptor entry %d exceeds clamp headroom", v)
			}
		}
	}
}

func TestDescriptorRotationSensitivity(t *testing.T) {
	// The same location described at two very different orientations
	// must produce different descriptors on an anisotropic pattern.
	img := NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			img.Pix[y*64+x] = float32(x) / 64 // horizontal ramp
		}
	}
	d0 := describe(img, 32, 32, 1.6, 0)
	d90 := describe(img, 32, 32, 1.6, math.Pi/2)
	if d0 == d90 {
		t.Error("descriptors identical under 90° rotation of the frame")
	}
}

func TestIsEdgeRejectsRidge(t *testing.T) {
	// A 1-D ridge (strong curvature across, none along) must be
	// rejected; an isotropic peak must pass.
	ridge := NewGray(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if y == 8 {
				ridge.Pix[y*16+x] = 1
			}
		}
	}
	if !isEdge(ridge, 8, 8, 10) {
		t.Error("ridge not classified as edge")
	}

	peak := NewGray(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			d2 := float64((x-8)*(x-8) + (y-8)*(y-8))
			peak.Pix[y*16+x] = float32(math.Exp(-d2 / 8))
		}
	}
	if isEdge(peak, 8, 8, 10) {
		t.Error("isotropic peak classified as edge")
	}
}

func TestImageCodecRoundTrip(t *testing.T) {
	img := blobImage(20, 14, [][2]int{{10, 7}}, 3)
	got, err := DecodeGray(EncodeGray(img))
	if err != nil {
		t.Fatalf("DecodeGray: %v", err)
	}
	if !reflect.DeepEqual(got, img) {
		t.Error("image codec round trip mismatch")
	}
}

func TestImageCodecRejectsMalformed(t *testing.T) {
	img := blobImage(8, 8, nil, 1)
	enc := EncodeGray(img)
	cases := [][]byte{
		nil,
		enc[:4],
		enc[:len(enc)-1],
		append(append([]byte{}, enc...), 0),
	}
	for i, c := range cases {
		if _, err := DecodeGray(c); err == nil {
			t.Errorf("case %d: DecodeGray accepted malformed input", i)
		}
	}
	// Absurd dimensions.
	bad := make([]byte, 8)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeGray(bad); err == nil {
		t.Error("DecodeGray accepted absurd dimensions")
	}
}

func TestKeypointCodecRoundTrip(t *testing.T) {
	img := blobImage(96, 96, [][2]int{{48, 48}}, 5)
	kps := Detect(img, DefaultParams())
	got, err := DecodeKeypoints(EncodeKeypoints(kps))
	if err != nil {
		t.Fatalf("DecodeKeypoints: %v", err)
	}
	if !reflect.DeepEqual(got, kps) {
		t.Error("keypoint codec round trip mismatch")
	}
	// Empty slice round-trips too.
	got, err = DecodeKeypoints(EncodeKeypoints(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip = (%v, %v)", got, err)
	}
}

func TestKeypointCodecRejectsMalformed(t *testing.T) {
	enc := EncodeKeypoints([]Keypoint{{X: 1, Y: 2}})
	for i, c := range [][]byte{nil, enc[:3], enc[:len(enc)-1], append(append([]byte{}, enc...), 1)} {
		if _, err := DecodeKeypoints(c); err == nil {
			t.Errorf("case %d: DecodeKeypoints accepted malformed input", i)
		}
	}
}

// Property: the keypoint codec round-trips arbitrary keypoint fields.
func TestQuickKeypointCodec(t *testing.T) {
	prop := func(x, y, sigma, orient float64, oct, lvl uint8, desc [16]byte) bool {
		kp := Keypoint{
			X: x, Y: y, Sigma: sigma, Orientation: orient,
			Octave: int(oct), Level: int(lvl),
		}
		copy(kp.Descriptor[:], desc[:])
		got, err := DecodeKeypoints(EncodeKeypoints([]Keypoint{kp}))
		if err != nil || len(got) != 1 {
			return false
		}
		return reflect.DeepEqual(got[0], kp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestSubSizeMismatch(t *testing.T) {
	if _, err := Sub(NewGray(4, 4), NewGray(5, 4)); err == nil {
		t.Error("Sub accepted mismatched sizes")
	}
}
