package logengine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"speed/internal/enclave"
)

// fuzzEnclave builds an enclave whose sealing key is reproducible
// across fuzz worker processes (seeded platform, fixed measurement),
// so corpus entries containing genuinely sealed frames authenticate.
func fuzzEnclave(tb testing.TB) *enclave.Enclave {
	tb.Helper()
	e, err := testPlatform().Create(fmt.Sprintf("store-fuzz-%d", enclaveSeq.Add(1)), []byte("store code"))
	if err != nil {
		tb.Fatalf("Create: %v", err)
	}
	return e
}

// sealedWAL writes n real records through the production append path
// and returns the raw WAL bytes.
func sealedWAL(tb testing.TB, n int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, err := openWAL(path)
	if err != nil {
		tb.Fatalf("openWAL: %v", err)
	}
	enc := fuzzEnclave(tb)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("seed-%d", i)
		if err := w.append(enc, walOpPut, tagOf(key), recOf(key)); err != nil {
			tb.Fatalf("append: %v", err)
		}
	}
	if err := w.append(enc, walOpDelete, tagOf("seed-0"), recOf("")); err != nil {
		tb.Fatalf("append delete: %v", err)
	}
	if err := w.close(); err != nil {
		tb.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatalf("read seed wal: %v", err)
	}
	return data
}

// FuzzRecord fuzzes the CRC32-C WAL record framing: arbitrary bytes
// are treated as an on-disk log and replayed. Whatever the input —
// torn tails, bit flips, oversized declared lengths, CRC-fixed
// garbage — replay must never panic, must either reject loudly
// (tampering) or truncate to a frame boundary, and after a truncating
// replay a second replay of the same file must be clean and
// bit-identical in what it applies.
func FuzzRecord(f *testing.F) {
	valid := sealedWAL(f, 3)
	f.Add(valid)
	f.Add([]byte{})
	// Torn tail: a partial final frame.
	f.Add(valid[:len(valid)-7])
	// Bit flip inside a payload: CRC must catch it.
	flipped := append([]byte(nil), valid...)
	flipped[walFrameHeader+3] ^= 0x40
	f.Add(flipped)
	// Oversized declared length with nothing behind it.
	oversized := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(oversized[0:4], maxWALPayload+1)
	f.Add(oversized)
	// Zero-length frame.
	zero := make([]byte, walFrameHeader)
	f.Add(zero)

	// One enclave for all executions: creating one derives sealing
	// keys, which would dominate per-exec time.
	enc := fuzzEnclave(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoders under the framing must hold up to raw bytes on
		// their own (they see post-unseal plaintext in production, but
		// a version skew could feed them anything).
		if op, err := decodeWALPayload(data); err == nil {
			if op.op != walOpPut && op.op != walOpDelete {
				t.Fatalf("decodeWALPayload accepted unknown op %d", op.op)
			}
		}
		_, _ = decodeRecord(data)

		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		w, err := openWAL(path)
		if err != nil {
			t.Skip("open failed, nothing to replay")
		}
		defer w.close()

		var firstOps []walOp
		replayed, torn, err := w.replay(enc, func(op walOp) { firstOps = append(firstOps, op) })
		if err != nil {
			// Authenticated-then-rejected input is a loud error, not a
			// crash artifact; nothing further to check.
			return
		}
		if replayed != int64(len(firstOps)) {
			t.Fatalf("replayed=%d but apply ran %d times", replayed, len(firstOps))
		}
		if torn {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() > int64(len(data)) {
				t.Fatalf("truncating replay grew the file: %d -> %d", len(data), st.Size())
			}
			if !bytes.Equal(mustRead(t, path), data[:st.Size()]) {
				t.Fatalf("truncated wal is not a byte prefix of the original")
			}
		}
		// A replay after crash recovery must be clean and apply the
		// identical operation sequence.
		var secondOps []walOp
		replayed2, torn2, err := w.replay(enc, func(op walOp) { secondOps = append(secondOps, op) })
		if err != nil {
			t.Fatalf("second replay errored after clean first replay: %v", err)
		}
		if torn2 {
			t.Fatal("second replay still torn after truncation")
		}
		if replayed2 != replayed {
			t.Fatalf("second replay applied %d ops, first applied %d", replayed2, replayed)
		}
		for i := range firstOps {
			a, b := firstOps[i], secondOps[i]
			if a.op != b.op || a.tag != b.tag || !bytes.Equal(encodeRecord(a.rec), encodeRecord(b.rec)) {
				t.Fatalf("op %d differs between replays", i)
			}
		}
		// CRC sanity: every surviving frame's checksum must match its
		// payload (replay only advances past verified frames).
		rest := mustRead(t, path)
		for off := 0; off+walFrameHeader <= len(rest); {
			length := binary.BigEndian.Uint32(rest[off : off+4])
			sum := binary.BigEndian.Uint32(rest[off+4 : off+8])
			end := off + walFrameHeader + int(length)
			if int64(replayed) == 0 || end > len(rest) {
				break
			}
			if crc32.Checksum(rest[off+walFrameHeader:end], crcTable) != sum {
				t.Fatalf("frame at offset %d survived replay with a bad checksum", off)
			}
			off = end
			replayed--
		}
	})
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
