package store

import (
	"net"
	"sync"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/wire"
)

// startServer launches a Server on an ephemeral TCP port and registers
// cleanup.
func startServer(t *testing.T, s *Store, opts ...ServerOption) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	opts = append(opts, WithLogf(func(string, ...any) {}))
	srv := NewServer(s, ln, opts...)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return srv
}

func dialStore(t *testing.T, addr string, app *enclave.Enclave, storeMeas enclave.Measurement) *wire.Channel {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// These tests speak the raw serial protocol, so pin the offer to v1.
	ch, err := wire.ClientHandshakeVersion(conn, app, storeMeas, nil, wire.ProtocolV1)
	if err != nil {
		conn.Close()
		t.Fatalf("ClientHandshake: %v", err)
	}
	t.Cleanup(func() { ch.Close() })
	return ch
}

func TestServerGetPutOverTCP(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	s, err := New(Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := startServer(t, s)
	ch := dialStore(t, srv.Addr().String(), appEnc, storeEnc.Measurement())

	tag := tagOf("net-tag")

	// Miss.
	if err := ch.SendMessage(wire.GetRequest{Tag: tag}); err != nil {
		t.Fatalf("send get: %v", err)
	}
	msg, err := ch.RecvMessage()
	if err != nil {
		t.Fatalf("recv get: %v", err)
	}
	if gr, ok := msg.(wire.GetResponse); !ok || gr.Found {
		t.Fatalf("reply = %#v, want not-found GetResponse", msg)
	}

	// Put.
	sealed := sealedOf("net blob")
	if err := ch.SendMessage(wire.PutRequest{Tag: tag, Sealed: sealed}); err != nil {
		t.Fatalf("send put: %v", err)
	}
	msg, err = ch.RecvMessage()
	if err != nil {
		t.Fatalf("recv put: %v", err)
	}
	if pr, ok := msg.(wire.PutResponse); !ok || !pr.OK {
		t.Fatalf("reply = %#v, want OK PutResponse", msg)
	}

	// Hit.
	if err := ch.SendMessage(wire.GetRequest{Tag: tag}); err != nil {
		t.Fatalf("send get: %v", err)
	}
	msg, err = ch.RecvMessage()
	if err != nil {
		t.Fatalf("recv get: %v", err)
	}
	gr, ok := msg.(wire.GetResponse)
	if !ok || !gr.Found || string(gr.Sealed.Blob) != "net blob" {
		t.Fatalf("reply = %#v, want found with blob", msg)
	}
}

func TestServerQuotaRejectionOverTCP(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, _ := p.Create("store", []byte("store code"))
	appEnc, _ := p.Create("app", []byte("app code"))
	s, err := New(Config{Enclave: storeEnc, Quota: QuotaConfig{MaxBytesPerApp: 4}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := startServer(t, s)
	ch := dialStore(t, srv.Addr().String(), appEnc, storeEnc.Measurement())

	if err := ch.SendMessage(wire.PutRequest{Tag: tagOf("t"), Sealed: sealedOf("way-over-quota")}); err != nil {
		t.Fatalf("send put: %v", err)
	}
	msg, err := ch.RecvMessage()
	if err != nil {
		t.Fatalf("recv put: %v", err)
	}
	pr, ok := msg.(wire.PutResponse)
	if !ok || pr.OK {
		t.Fatalf("reply = %#v, want rejected PutResponse", msg)
	}
	if pr.Err == "" {
		t.Error("rejected PutResponse carries no reason")
	}
}

func TestServerRejectsUnattestedClient(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, _ := p.Create("store", []byte("store code"))
	appEnc, _ := p.Create("app", []byte("app code"))
	s, err := New(Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	banned := appEnc.Measurement()
	srv := startServer(t, s, WithAcceptFunc(func(m enclave.Measurement) bool {
		return m != banned
	}))

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if _, err := wire.ClientHandshake(conn, appEnc, storeEnc.Measurement()); err == nil {
		t.Error("banned client completed handshake")
	}
}

func TestServerMultipleClients(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, _ := p.Create("store", []byte("store code"))
	s, err := New(Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := startServer(t, s)

	// App A stores a result; app B (different code, same computation)
	// retrieves it: cross-application deduplication over the network.
	appA, _ := p.Create("appA", []byte("app A code"))
	appB, _ := p.Create("appB", []byte("app B code"))
	chA := dialStore(t, srv.Addr().String(), appA, storeEnc.Measurement())
	chB := dialStore(t, srv.Addr().String(), appB, storeEnc.Measurement())

	tag := tagOf("shared")
	if err := chA.SendMessage(wire.PutRequest{Tag: tag, Sealed: sealedOf("shared blob")}); err != nil {
		t.Fatalf("A put: %v", err)
	}
	if _, err := chA.RecvMessage(); err != nil {
		t.Fatalf("A put reply: %v", err)
	}

	if err := chB.SendMessage(wire.GetRequest{Tag: tag}); err != nil {
		t.Fatalf("B get: %v", err)
	}
	msg, err := chB.RecvMessage()
	if err != nil {
		t.Fatalf("B get reply: %v", err)
	}
	gr, ok := msg.(wire.GetResponse)
	if !ok || !gr.Found || string(gr.Sealed.Blob) != "shared blob" {
		t.Fatalf("B reply = %#v, want shared blob", msg)
	}
}

func TestDispatchRejectsUnexpectedMessage(t *testing.T) {
	s := testStore(t, Config{})
	srv := NewServer(s, nil, WithLogf(func(string, ...any) {}))
	if _, err := srv.Dispatch(ownerOf("a"), wire.GetResponse{}); err == nil {
		t.Error("Dispatch accepted a response message as a request")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := testStore(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := NewServer(s, ln, WithLogf(func(string, ...any) {}))
	done := make(chan struct{})
	go func() {
		_ = srv.Serve()
		close(done)
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	<-done
}

// mle import is used via sealedOf in store_test.go; keep the compiler
// honest about this file's own usage too.
var _ = mle.TagSize
