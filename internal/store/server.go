package store

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"speed/internal/enclave"
	"speed/internal/wire"
)

// Server exposes a Store over the wire protocol. The main body of the
// server runs outside the enclave (Section IV-B: "the main body of
// encrypted ResultStore runs outside the enclave"); each request is
// parsed outside and delegated into the store enclave via an ECALL.
type Server struct {
	store  *Store
	ln     net.Listener
	accept func(enclave.Measurement) bool
	trust  *wire.Trust
	logf   func(format string, args ...any)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithAcceptFunc restricts which attested client measurements are
// admitted. The default accepts any client that passes attestation.
func WithAcceptFunc(accept func(enclave.Measurement) bool) ServerOption {
	return func(s *Server) { s.accept = accept }
}

// WithLogf sets the diagnostic logger. The default logs via the
// standard logger; pass a no-op to silence.
func WithLogf(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithTrust accepts clients from remote machines whose platform
// attestation keys are in the trust set (remote attestation). Without
// it only same-platform clients can connect.
func WithTrust(trust *wire.Trust) ServerOption {
	return func(s *Server) { s.trust = trust }
}

// NewServer wraps store with a protocol server listening on ln.
// Call Serve to start accepting and Close to shut down.
func NewServer(st *Store, ln net.Listener, opts ...ServerOption) *Server {
	s := &Server{
		store: st,
		ln:    ln,
		logf:  log.Printf,
		conns: make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Close is called. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	ch, err := wire.ServerHandshakeTrust(conn, s.store.Enclave(), s.accept, s.trust)
	if err != nil {
		s.logf("store: handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	owner := ch.Peer()
	for {
		msg, err := ch.RecvMessage()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("store: recv from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		reply, err := s.Dispatch(owner, msg)
		if err != nil {
			s.logf("store: dispatch: %v", err)
			return
		}
		if err := ch.SendMessage(reply); err != nil {
			s.logf("store: send to %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// Dispatch handles one protocol message on behalf of the attested
// application owner and produces the reply. It is exported so that the
// in-process loopback client can reuse the exact request path without a
// socket.
func (s *Server) Dispatch(owner enclave.Measurement, msg wire.Message) (wire.Message, error) {
	switch m := msg.(type) {
	case wire.GetRequest:
		sealed, found, err := s.store.GetAs(owner, m.Tag)
		switch {
		case errors.Is(err, ErrUnauthorized):
			// Deny without information: an unauthorized application
			// learns nothing about which tags exist.
			return wire.GetResponse{Found: false}, nil
		case err != nil:
			return nil, fmt.Errorf("get %v: %w", m.Tag, err)
		default:
			return wire.GetResponse{Found: found, Sealed: sealed}, nil
		}
	case wire.PutRequest:
		put := s.store.Put
		if m.Replace {
			put = s.store.PutReplace
		}
		_, err := put(owner, m.Tag, m.Sealed)
		switch {
		case errors.Is(err, ErrQuota), errors.Is(err, ErrUnauthorized):
			return wire.PutResponse{OK: false, Err: err.Error()}, nil
		case err != nil:
			return nil, fmt.Errorf("put %v: %w", m.Tag, err)
		default:
			return wire.PutResponse{OK: true}, nil
		}
	default:
		return nil, fmt.Errorf("store: unexpected message %v", msg.Kind())
	}
}
