package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// Snapshot persistence: a long-running ResultStore must survive
// restarts without losing its dictionary (losing it only costs
// recomputation, but a warm cache is the whole point). The metadata
// dictionary contains key material (the challenges and wrapped keys),
// so a snapshot is sealed to the store enclave's identity with the
// platform-bound sealing key before leaving the enclave: only the same
// store code on the same machine can restore it. Ciphertext blobs are
// included verbatim — they are already AEAD-protected.
//
// Snapshots are engine-agnostic: they stream through the engine's
// bounded iterator, so a snapshot of a log-engine store works without
// materializing its keyspace twice, and a snapshot taken on one engine
// restores into a store running another.

const snapshotVersion = 1

// ErrBadSnapshot is returned when a snapshot fails to parse after
// unsealing.
var ErrBadSnapshot = errors.New("store: malformed snapshot")

// SealSnapshot serialises the dictionary (and its blobs) and seals it
// to the store enclave identity. The store remains usable.
func (s *Store) SealSnapshot() ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	type record struct {
		tag    mle.Tag
		sealed mle.Sealed
		owner  enclave.Measurement
		hits   int64
		touch  time.Time
	}
	// Records are ordered globally by lastTouch so restore rebuilds a
	// faithful eviction order regardless of the source engine's layout
	// (the restore target may use a different shard count or engine —
	// the format carries no layout).
	records := make([]record, 0, s.Len())
	err := s.eng.Iterate(func(tag mle.Tag, rec storeengine.Record) bool {
		records = append(records, record{
			tag: tag,
			sealed: mle.Sealed{
				Challenge:  rec.Challenge,
				WrappedKey: rec.WrappedKey,
				Blob:       rec.Blob,
			},
			owner: rec.Owner,
			hits:  rec.Hits,
			touch: rec.LastTouch,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].touch.Before(records[j].touch)
	})

	var buf bytes.Buffer
	buf.WriteByte(snapshotVersion)
	var lenB [8]byte
	binary.BigEndian.PutUint64(lenB[:], uint64(len(records)))
	buf.Write(lenB[:])
	writeBytes := func(b []byte) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(b)))
		buf.Write(n[:])
		buf.Write(b)
	}
	for _, r := range records {
		buf.Write(r.tag[:])
		buf.Write(r.owner[:])
		binary.BigEndian.PutUint64(lenB[:], uint64(r.hits))
		buf.Write(lenB[:])
		writeBytes(r.sealed.Challenge)
		writeBytes(r.sealed.WrappedKey)
		writeBytes(r.sealed.Blob)
	}

	sealed, err := s.cfg.Enclave.Seal(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("seal snapshot: %w", err)
	}
	return sealed, nil
}

// RestoreSnapshot unseals a snapshot produced by SealSnapshot on the
// same enclave identity and platform, and installs its entries into
// this (typically fresh) store. Existing entries win over snapshot
// entries with the same tag. It returns the number of entries
// installed.
func (s *Store) RestoreSnapshot(sealed []byte) (int, error) {
	raw, err := s.cfg.Enclave.Unseal(sealed)
	if err != nil {
		return 0, err
	}
	if len(raw) < 9 || raw[0] != snapshotVersion {
		return 0, ErrBadSnapshot
	}
	n := binary.BigEndian.Uint64(raw[1:9])
	rd := raw[9:]
	readBytes := func() ([]byte, error) {
		if len(rd) < 4 {
			return nil, ErrBadSnapshot
		}
		l := binary.BigEndian.Uint32(rd)
		rd = rd[4:]
		if uint64(l) > uint64(len(rd)) {
			return nil, ErrBadSnapshot
		}
		b := rd[:l:l]
		rd = rd[l:]
		return b, nil
	}

	installed := 0
	for i := uint64(0); i < n; i++ {
		if len(rd) < 32+32+8 {
			return installed, ErrBadSnapshot
		}
		var tag mle.Tag
		copy(tag[:], rd[:32])
		rd = rd[32:]
		var owner enclave.Measurement
		copy(owner[:], rd[:32])
		rd = rd[32:]
		hits := int64(binary.BigEndian.Uint64(rd))
		rd = rd[8:]
		challenge, err := readBytes()
		if err != nil {
			return installed, err
		}
		wrapped, err := readBytes()
		if err != nil {
			return installed, err
		}
		blob, err := readBytes()
		if err != nil {
			return installed, err
		}
		ok, err := s.put(owner, tag, mle.Sealed{
			Challenge:  challenge,
			WrappedKey: wrapped,
			Blob:       blob,
		}, putOpts{restore: true, hits: hits})
		if err != nil {
			// Space-quota pressure during restore is not fatal; skip
			// the entry.
			continue
		}
		if ok {
			installed++
		}
	}
	if len(rd) != 0 {
		return installed, ErrBadSnapshot
	}
	return installed, nil
}
