package store

import (
	"os"
	"path/filepath"
	"testing"

	"speed/internal/enclave"
)

// persistEnclave creates a store enclave on a deterministic platform,
// so a second call (a simulated restart) derives the same sealing key.
func persistEnclave(t *testing.T) *enclave.Enclave {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{PlatformSeed: []byte("store-engine-test-seed")})
	e, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return e
}

func TestEngineSelection(t *testing.T) {
	t.Run("default is memory", func(t *testing.T) {
		s := testStore(t, Config{})
		defer s.Close()
		if got := s.EngineName(); got != EngineMemory {
			t.Errorf("EngineName = %q, want %q", got, EngineMemory)
		}
		if s.Persistent() {
			t.Error("memory engine reported Persistent")
		}
	})
	t.Run("data dir implies log", func(t *testing.T) {
		s := testStore(t, Config{Enclave: persistEnclave(t), DataDir: t.TempDir()})
		defer s.Close()
		if got := s.EngineName(); got != EngineLog {
			t.Errorf("EngineName = %q, want %q", got, EngineLog)
		}
		if !s.Persistent() {
			t.Error("log engine did not report Persistent")
		}
	})
	t.Run("log requires data dir", func(t *testing.T) {
		if _, err := New(Config{Enclave: persistEnclave(t), Engine: EngineLog}); err == nil {
			t.Error("New accepted the log engine without a data dir")
		}
	})
	t.Run("unknown engine rejected", func(t *testing.T) {
		if _, err := New(Config{Enclave: persistEnclave(t), Engine: "flat-earth"}); err == nil {
			t.Error("New accepted an unknown engine")
		}
	})
	t.Run("bad fsync policy rejected", func(t *testing.T) {
		if _, err := New(Config{Enclave: persistEnclave(t), DataDir: t.TempDir(), Fsync: "eventually"}); err == nil {
			t.Error("New accepted an unknown fsync policy")
		}
	})
}

// TestLogEnginePersistenceRoundTrip drives persistence through the
// Store's public API: Put, clean Close, reopen on a fresh platform with
// the same seed (a machine restart), Get.
func TestLogEnginePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Config{Enclave: persistEnclave(t), DataDir: dir})
	tags := []string{"alpha", "beta", "gamma"}
	for _, k := range tags {
		if _, err := s.Put(ownerOf("app"), tagOf(k), sealedOf("blob-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	// Replacement must persist too: the reopened store serves the new
	// version, not the original.
	if _, err := s.PutReplace(ownerOf("app"), tagOf("beta"), sealedOf("blob-beta-v2")); err != nil {
		t.Fatalf("PutReplace: %v", err)
	}
	s.Close()

	s2 := testStore(t, Config{Enclave: persistEnclave(t), DataDir: dir})
	defer s2.Close()
	if got := s2.Len(); got != 3 {
		t.Fatalf("reopened Len = %d, want 3", got)
	}
	for _, k := range []string{"alpha", "gamma"} {
		got, found, err := s2.Get(tagOf(k))
		if err != nil || !found {
			t.Fatalf("Get(%s) after reopen: found=%v err=%v", k, found, err)
		}
		if string(got.Blob) != "blob-"+k {
			t.Errorf("Get(%s) blob = %q, want %q", k, got.Blob, "blob-"+k)
		}
	}
	if got, found, _ := s2.Get(tagOf("beta")); !found || string(got.Blob) != "blob-beta-v2" {
		t.Errorf("replaced entry after restart = %q found=%v, want the v2 blob", got.Blob, found)
	}
}

// TestLogEngineExportAndSnapshot pins that the bounded iterator keeps
// the replication surface working on the log engine: Export, the
// hot-entry variant, and sealed snapshots.
func TestLogEngineExportAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Config{Enclave: persistEnclave(t), DataDir: dir})
	defer s.Close()
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, err := s.Put(ownerOf("app"), tagOf(k), sealedOf("v-"+k)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Make "a" hot.
	for i := 0; i < 3; i++ {
		if _, found, err := s.Get(tagOf("a")); err != nil || !found {
			t.Fatalf("Get: found=%v err=%v", found, err)
		}
	}
	// Force the records down into segments so the export streams from
	// disk, not just the memtable.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	all, err := s.Export(0)
	if err != nil || len(all) != 4 {
		t.Errorf("Export(0) = %d entries, %v; want 4", len(all), err)
	}
	hot, err := s.ExportHotAs(ownerOf("app"), 0, 1)
	if err != nil || len(hot) != 1 || hot[0].Tag != tagOf("a") {
		t.Errorf("ExportHotAs = %d entries, %v; want just the hot tag", len(hot), err)
	}

	snap, err := s.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}
	// Restore into a fresh memory-engine store on the same platform
	// identity: snapshots stay engine-portable.
	dst := testStore(t, Config{Enclave: persistEnclave(t)})
	defer dst.Close()
	n, err := dst.RestoreSnapshot(snap)
	if err != nil || n != 4 {
		t.Fatalf("RestoreSnapshot = %d, %v; want 4 entries", n, err)
	}
	if got, found, _ := dst.Get(tagOf("c")); !found || string(got.Blob) != "v-c" {
		t.Errorf("restored Get(c) = %q found=%v", got.Blob, found)
	}
}

// TestAutosaverBothModes pins the engine-aware save behavior: volatile
// engines get a sealed snapshot file, persistent engines get a
// checkpoint (memtable flush + WAL fsync) and no snapshot file.
func TestAutosaverBothModes(t *testing.T) {
	t.Run("memory engine writes a snapshot", func(t *testing.T) {
		s := testStore(t, Config{Enclave: persistEnclave(t)})
		defer s.Close()
		if _, err := s.Put(ownerOf("app"), tagOf("k"), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		path := filepath.Join(t.TempDir(), "snap.sealed")
		a := NewAutosaver(s, path, 0, nil)
		if err := a.SaveOnce(); err != nil {
			t.Fatalf("SaveOnce: %v", err)
		}
		if a.Saves() != 1 {
			t.Errorf("Saves = %d, want 1", a.Saves())
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("snapshot file missing: %v", err)
		}
	})
	t.Run("log engine checkpoints instead", func(t *testing.T) {
		dir := t.TempDir()
		s := testStore(t, Config{Enclave: persistEnclave(t), DataDir: dir, Fsync: "none"})
		defer s.Close()
		if _, err := s.Put(ownerOf("app"), tagOf("k"), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if s.EngineStats().Flushes != 0 {
			t.Fatal("memtable flushed before the checkpoint")
		}
		path := filepath.Join(t.TempDir(), "snap.sealed")
		a := NewAutosaver(s, path, 0, nil)
		if err := a.SaveOnce(); err != nil {
			t.Fatalf("SaveOnce: %v", err)
		}
		if a.Saves() != 1 {
			t.Errorf("Saves = %d, want 1", a.Saves())
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("persistent engine wrote a snapshot file (err=%v), want checkpoint only", err)
		}
		es := s.EngineStats()
		if es.Flushes != 1 {
			t.Errorf("Flushes = %d, want 1 (checkpoint flushes the memtable)", es.Flushes)
		}
		if es.WALBytes != 0 {
			t.Errorf("WALBytes = %d after checkpoint, want 0 (flush resets the WAL)", es.WALBytes)
		}
	})
}

// TestCrashRecoveryThroughStore is the API-level kill -9 test: every
// acknowledged Put must be served after Crash + reopen.
func TestCrashRecoveryThroughStore(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Config{Enclave: persistEnclave(t), DataDir: dir, Fsync: "commit"})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := s.Put(ownerOf("app"), tagOf(string(rune('a'+i))), sealedOf("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	s.Crash()
	if !s.Closed() {
		t.Error("Crash did not mark the store closed")
	}

	s2 := testStore(t, Config{Enclave: persistEnclave(t), DataDir: dir})
	defer s2.Close()
	for i := 0; i < n; i++ {
		if _, found, err := s2.Get(tagOf(string(rune('a' + i)))); err != nil || !found {
			t.Fatalf("acknowledged put %d lost after crash: found=%v err=%v", i, found, err)
		}
	}
	if s2.EngineStats().Replayed == 0 {
		t.Error("recovery replayed nothing; the crash path was not exercised")
	}
}
