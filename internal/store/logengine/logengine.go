// Package logengine is the persistent, log-structured storage engine
// behind store.Store: an append-only WAL of sealed records feeding an
// in-enclave memtable, flushed as immutable sorted segments, with a
// background compactor, a per-segment sparse index and a bounded
// hot-entry cache. The working set can exceed RAM: only the memtable,
// the cache, and the sparse indexes stay resident.
//
// Trust model: the directory lives on untrusted media. Every record is
// sealed (enclave AEAD, bound to platform and measurement) before it
// is written, so the disk sees ciphertext and integrity-protected
// metadata only; anything read back is authenticated before use. CRCs
// on WAL frames and segment bodies distinguish crash damage (expected,
// recovered) from tampering (rejected loudly). Plaintext challenges
// and wrapped keys exist only inside enclave memory.
//
// Durability: under FsyncCommit (the default) an Insert or Remove is
// acknowledged only after the WAL frame is fsynced, so acknowledged
// operations survive kill -9 and power loss. FsyncInterval bounds loss
// to the sync interval; FsyncNone leaves it to the OS page cache.
// Recovery loads the manifest's segments (CRC-verified), deletes
// orphan segment files from interrupted flushes or compactions, then
// replays the WAL — a torn tail is truncated, never applied.
//
// Popularity durability: hit counts and last-touch times for
// segment-resident records accumulate in an in-enclave touch overlay,
// persisted as compact walOpTouch WAL frames on flush, checkpoint and
// close, and baked into rewritten records by compaction — so hit
// counts survive a clean restart and WAL replay. Known approximation:
// touches since the last flush/checkpoint are lost on a crash (they
// are popularity metadata, never payload), and under enclave memory
// pressure a touch may be skipped, reverting a record's count to its
// last durably baked value.
package logengine

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// Fsync is the WAL durability policy.
type Fsync int

const (
	// FsyncCommit syncs the WAL before acknowledging every mutation.
	FsyncCommit Fsync = iota
	// FsyncEvery syncs on a background interval.
	FsyncEvery
	// FsyncNone never syncs explicitly.
	FsyncNone
)

// ParseFsync maps the operator-facing policy names ("commit",
// "interval", "none"; "" defaults to commit) to a policy.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "", "commit":
		return FsyncCommit, nil
	case "interval":
		return FsyncEvery, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("logengine: unknown fsync policy %q (want commit, interval or none)", s)
	}
}

func (f Fsync) String() string {
	switch f {
	case FsyncCommit:
		return "commit"
	case FsyncEvery:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// Defaults for zero Config fields.
const (
	DefaultMemtableBytes   = 4 << 20
	DefaultCacheBytes      = 4 << 20
	DefaultFsyncInterval   = 100 * time.Millisecond
	DefaultCompactInterval = 30 * time.Second
	// memRecOverhead approximates per-entry memtable bookkeeping
	// beyond the variable-length fields, charged against the enclave.
	memRecOverhead = 128
	// cacheRecOverhead is the same for hot-cache entries.
	cacheRecOverhead = 128
)

// Config configures an Engine.
type Config struct {
	// Dir is the engine's directory on (untrusted) storage. Created if
	// missing. Required.
	Dir string
	// Enclave hosts the memtable, cache and indexes, and seals
	// everything that leaves them. Required.
	Enclave *enclave.Enclave
	// MemtableBytes bounds the in-enclave write buffer; reaching it
	// triggers a flush to a sorted segment. 0 means 4 MiB.
	MemtableBytes int64
	// CacheBytes bounds the in-enclave hot-entry read cache in front
	// of the segments. 0 means 4 MiB.
	CacheBytes int64
	// Fsync is the WAL durability policy.
	Fsync Fsync
	// FsyncInterval is the background sync period under FsyncEvery;
	// 0 means 100ms.
	FsyncInterval time.Duration
	// CompactInterval is how often the background compactor considers
	// merging segments; 0 means 30s, negative disables the background
	// loop (CompactNow still works).
	CompactInterval time.Duration
	// Oblivious makes lookups over the in-enclave structures
	// (memtable, cache) access-pattern uniform and disables recency
	// and popularity maintenance. Segment reads go to untrusted disk,
	// whose access pattern is observable regardless; see DESIGN.md.
	Oblivious bool
	// TTL expires records not touched within the duration; 0 disables.
	TTL time.Duration
	// Now is the clock; nil means time.Now.
	Now func() time.Time
	// Logf receives recovery and compaction diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// memRec is one memtable entry: the newest state of a tag that has not
// yet reached a segment.
type memRec struct {
	dead bool
	rec  storeengine.Record // owned copies; Blob inline
}

func (r *memRec) bytes() int64 {
	if r.dead {
		return 32 + memRecOverhead
	}
	return 32 + memRecOverhead + int64(len(r.rec.Challenge)+len(r.rec.WrappedKey)+len(r.rec.Blob))
}

// cacheRec is one hot-cache entry fronting the segments.
type cacheRec struct {
	tag  mle.Tag
	rec  storeengine.Record
	elem *list.Element
}

func (r *cacheRec) bytes() int64 {
	return 32 + cacheRecOverhead + int64(len(r.rec.Challenge)+len(r.rec.WrappedKey)+len(r.rec.Blob))
}

// touchRec is one touch-overlay entry: the authoritative popularity for
// a segment-resident record.
type touchRec struct {
	hits int64
	last time.Time
}

// touchRecBytes is the enclave charge for one overlay entry (map key +
// fields + bookkeeping).
const touchRecBytes = 96

// Engine is the log-structured engine. It implements
// store/engine.Engine. A single mutex serializes mutations and
// metadata reads; segment file reads happen under it too (v1 keeps the
// locking simple — the bounded sparse-index scan keeps the hold time
// short).
type Engine struct {
	cfg Config

	mu        sync.Mutex
	closed    bool
	wal       *wal
	memtable  map[mle.Tag]*memRec
	memBytes  int64      // enclave-charged memtable footprint
	segments  []*segment // oldest first
	nextSegID uint64

	cache      map[mle.Tag]*cacheRec
	cacheLRU   *list.List // front = most recent
	cacheBytes int64

	// touched overlays popularity (hits, last touch) onto records whose
	// newest durable copy lives in a segment: cache hits and segment
	// reads update it instead of rewriting the record. Flush and
	// checkpoint persist it as walOpTouch frames; compaction bakes it
	// into the rewritten records. touchDirty marks entries changed since
	// they last reached the WAL.
	touched    map[mle.Tag]*touchRec
	touchDirty map[mle.Tag]bool

	entries    int64
	valueBytes int64
	st         storeengine.Stats // activity counters (occupancy filled on snapshot)

	// compactHook, when set, runs between writing a compacted segment
	// and committing the manifest; tests use it to simulate a crash at
	// the most delicate point.
	compactHook func()

	stopBg chan struct{}
	bgDone sync.WaitGroup
}

var _ storeengine.Engine = (*Engine)(nil)

// Open loads (or initialises) the engine at cfg.Dir, recovering state:
// manifest-listed segments are opened and CRC-verified, orphan segment
// files are deleted, and the WAL is replayed into the memtable with
// any torn tail truncated.
func Open(cfg Config) (*Engine, error) {
	if cfg.Enclave == nil {
		return nil, errors.New("logengine: Config.Enclave is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("logengine: Config.Dir is required")
	}
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = DefaultMemtableBytes
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = DefaultFsyncInterval
	}
	if cfg.CompactInterval == 0 {
		cfg.CompactInterval = DefaultCompactInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o700); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		memtable:   make(map[mle.Tag]*memRec),
		cache:      make(map[mle.Tag]*cacheRec),
		cacheLRU:   list.New(),
		touched:    make(map[mle.Tag]*touchRec),
		touchDirty: make(map[mle.Tag]bool),
		stopBg:     make(chan struct{}),
	}
	if err := e.recover(); err != nil {
		return nil, err
	}
	e.startBackground()
	return e, nil
}

// recover rebuilds in-memory state from the directory.
func (e *Engine) recover() error {
	names, err := readManifest(e.cfg.Dir)
	if err != nil {
		return err
	}
	listed := make(map[string]bool, len(names))
	var segKeys [][]keyHdr
	for _, name := range names {
		listed[name] = true
		id, _ := parseSegmentName(name)
		seg, keys, err := openSegment(filepath.Join(e.cfg.Dir, name), id)
		if err != nil {
			return err
		}
		e.segments = append(e.segments, seg)
		segKeys = append(segKeys, keys)
		if id >= e.nextSegID {
			e.nextSegID = id + 1
		}
	}
	// Remove orphan segment files: a flush or compaction that died
	// after creating its output but before committing the manifest.
	entriesDir, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return err
	}
	for _, de := range entriesDir {
		id, ok := parseSegmentName(de.Name())
		if !ok || listed[de.Name()] {
			continue
		}
		if id >= e.nextSegID {
			e.nextSegID = id + 1 // never reuse an orphan's id
		}
		e.cfg.Logf("logengine: removing orphan segment %s (interrupted flush/compaction)", de.Name())
		if err := os.Remove(filepath.Join(e.cfg.Dir, de.Name())); err != nil {
			return err
		}
	}

	w, err := openWAL(filepath.Join(e.cfg.Dir, walName))
	if err != nil {
		return err
	}
	e.wal = w
	replayed, torn, err := w.replay(e.cfg.Enclave, func(op walOp) {
		if op.op == walOpTouch {
			// Popularity for a segment-resident record. If the tag has a
			// newer WAL state it wins: a live memtable record carries its
			// own counters and a tombstone makes the touch moot.
			if mr, had := e.memtable[op.tag]; had {
				if !mr.dead {
					mr.rec.Hits = op.rec.Hits
					mr.rec.LastTouch = op.rec.LastTouch
				}
				return
			}
			e.noteTouch(op.tag, op.rec.Hits, op.rec.LastTouch)
			return
		}
		prev, had := e.memtable[op.tag]
		var nr *memRec
		if op.op == walOpDelete {
			nr = &memRec{dead: true}
		} else {
			nr = &memRec{rec: op.rec}
		}
		e.dropTouch(op.tag)
		if had {
			e.memBytes -= prev.bytes()
		}
		e.memtable[op.tag] = nr
		e.memBytes += nr.bytes()
	})
	if err != nil {
		return err
	}
	e.st.Replayed = replayed
	if torn {
		e.st.TornTails++
		e.cfg.Logf("logengine: truncated torn wal tail after %d intact records", replayed)
	}
	if err := e.cfg.Enclave.Alloc(e.memBytes); err != nil {
		return fmt.Errorf("logengine: memtable allocation during recovery: %w", err)
	}

	// Compute live occupancy from the merged view: newest state wins
	// (memtable over segments, later segments over earlier). The
	// per-segment key lists are transient — header-only, no payloads —
	// and dropped when this returns.
	seen := make(map[mle.Tag]bool, len(e.memtable))
	for tag, mr := range e.memtable {
		seen[tag] = true
		if !mr.dead {
			e.entries++
			e.valueBytes += int64(len(mr.rec.Blob))
		}
	}
	for i := len(segKeys) - 1; i >= 0; i-- { // newest segment first
		for _, k := range segKeys[i] {
			if seen[k.tag] {
				continue
			}
			seen[k.tag] = true
			if !k.dead {
				e.entries++
				e.valueBytes += k.blobSize
			}
		}
	}
	if replayed > 0 || len(e.segments) > 0 {
		e.cfg.Logf("logengine: recovered %d entries (%d segments, %d wal records replayed)",
			e.entries, len(e.segments), replayed)
	}
	return nil
}

// startBackground launches the interval-fsync and compaction loops.
func (e *Engine) startBackground() {
	if e.cfg.Fsync == FsyncEvery {
		e.bgDone.Add(1)
		go func() {
			defer e.bgDone.Done()
			t := time.NewTicker(e.cfg.FsyncInterval)
			defer t.Stop()
			for {
				select {
				case <-e.stopBg:
					return
				case <-t.C:
					e.mu.Lock()
					if !e.closed {
						if err := e.wal.sync(); err != nil {
							e.cfg.Logf("logengine: interval fsync: %v", err)
						}
					}
					e.mu.Unlock()
				}
			}
		}()
	}
	if e.cfg.CompactInterval > 0 {
		e.bgDone.Add(1)
		go func() {
			defer e.bgDone.Done()
			t := time.NewTicker(e.cfg.CompactInterval)
			defer t.Stop()
			for {
				select {
				case <-e.stopBg:
					return
				case <-t.C:
					if err := e.CompactNow(); err != nil && !errors.Is(err, storeengine.ErrClosed) {
						e.cfg.Logf("logengine: compaction: %v", err)
					}
				}
			}
		}()
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "log" }

// Durable implements engine.Engine.
func (e *Engine) Durable() bool { return true }

// Get implements engine.Engine: memtable, then hot cache, then
// segments newest-first through their sparse indexes.
func (e *Engine) Get(tag mle.Tag) (storeengine.Record, storeengine.GetStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return storeengine.Record{}, storeengine.StatusMiss, storeengine.ErrClosed
	}
	var (
		rec    storeengine.Record
		status = storeengine.StatusMiss
	)
	// The in-enclave tiers are consulted inside one ECALL, mirroring
	// the memory engine's dictionary access.
	err := e.cfg.Enclave.ECall(func() error {
		if mr, ok := e.lookupMem(tag); ok {
			if mr.dead {
				return nil // deleted: definitive miss, segments are stale
			}
			if e.expired(mr.rec.LastTouch) {
				status = storeengine.StatusExpired
				return nil
			}
			if !e.cfg.Oblivious {
				mr.rec.Hits++
				mr.rec.LastTouch = e.cfg.Now()
			}
			rec = copyRecord(mr.rec)
			status = storeengine.StatusHit
			e.st.CacheHits++
			return nil
		}
		if cr, ok := e.lookupCache(tag); ok {
			if e.expired(cr.rec.LastTouch) {
				status = storeengine.StatusExpired
				return nil
			}
			if !e.cfg.Oblivious {
				cr.rec.Hits++
				cr.rec.LastTouch = e.cfg.Now()
				e.cacheLRU.MoveToFront(cr.elem)
				e.noteTouch(tag, cr.rec.Hits, cr.rec.LastTouch)
			}
			rec = copyRecord(cr.rec)
			status = storeengine.StatusHit
			e.st.CacheHits++
			return nil
		}
		return nil
	})
	if err != nil {
		return storeengine.Record{}, storeengine.StatusMiss, err
	}
	if status != storeengine.StatusMiss || e.memHasTombstone(tag) {
		return rec, status, nil
	}

	// Miss in the in-enclave tiers: consult the segments (untrusted
	// disk), newest first. Unsealing happens back inside the enclave.
	e.st.CacheMisses++
	for i := len(e.segments) - 1; i >= 0; i-- {
		sealed, found, dead, err := e.segments[i].find(tag)
		if err != nil {
			return storeengine.Record{}, storeengine.StatusMiss, err
		}
		if !found {
			continue
		}
		if dead {
			return storeengine.Record{}, storeengine.StatusMiss, nil
		}
		var srec storeengine.Record
		uerr := e.cfg.Enclave.ECall(func() error {
			r, err := unsealRecord(e.cfg.Enclave, sealed)
			if err != nil {
				return err
			}
			srec = r
			return nil
		})
		if uerr != nil {
			// Authenticated storage failed us: surface as dangling so
			// the policy layer drops the entry and recomputes.
			e.cfg.Logf("logengine: record %x failed authentication: %v", tag[:8], uerr)
			return storeengine.Record{}, storeengine.StatusDangling, nil
		}
		e.applyTouch(tag, &srec)
		if e.expired(srec.LastTouch) {
			return storeengine.Record{}, storeengine.StatusExpired, nil
		}
		if !e.cfg.Oblivious {
			srec.Hits++
			srec.LastTouch = e.cfg.Now()
			e.noteTouch(tag, srec.Hits, srec.LastTouch)
			e.cacheInsert(tag, srec)
		}
		return copyRecord(srec), storeengine.StatusHit, nil
	}
	return storeengine.Record{}, storeengine.StatusMiss, nil
}

// lookupMem finds a memtable entry; under Oblivious it scans every
// entry with uniform work.
func (e *Engine) lookupMem(tag mle.Tag) (*memRec, bool) {
	if !e.cfg.Oblivious {
		mr, ok := e.memtable[tag]
		return mr, ok
	}
	var found *memRec
	for k, mr := range e.memtable {
		if constantTimeTagEq(k, tag) {
			found = mr
		}
	}
	return found, found != nil
}

// lookupCache finds a hot-cache entry; oblivious scans uniformly.
func (e *Engine) lookupCache(tag mle.Tag) (*cacheRec, bool) {
	if !e.cfg.Oblivious {
		cr, ok := e.cache[tag]
		return cr, ok
	}
	var found *cacheRec
	for k, cr := range e.cache {
		if constantTimeTagEq(k, tag) {
			found = cr
		}
	}
	return found, found != nil
}

// memHasTombstone reports whether the memtable's newest state for tag
// is a deletion (so segment lookups must not resurrect it).
func (e *Engine) memHasTombstone(tag mle.Tag) bool {
	mr, ok := e.memtable[tag]
	return ok && mr.dead
}

func (e *Engine) expired(touch time.Time) bool {
	return e.cfg.TTL > 0 && e.cfg.Now().Sub(touch) > e.cfg.TTL
}

// cacheInsert places a record in the hot cache, evicting from the LRU
// tail to stay within budget. Caller holds mu (inside the enclave or
// right after a segment read).
func (e *Engine) cacheInsert(tag mle.Tag, rec storeengine.Record) {
	if old, ok := e.cache[tag]; ok {
		e.cacheBytes -= old.bytes()
		e.cfg.Enclave.Free(old.bytes())
		e.cacheLRU.Remove(old.elem)
		delete(e.cache, tag)
	}
	cr := &cacheRec{tag: tag, rec: copyRecord(rec)}
	if cr.bytes() > e.cfg.CacheBytes {
		return // larger than the whole budget; don't thrash
	}
	if err := e.cfg.Enclave.Alloc(cr.bytes()); err != nil {
		return // enclave memory pressure: serving without caching is fine
	}
	cr.elem = e.cacheLRU.PushFront(cr)
	e.cache[tag] = cr
	e.cacheBytes += cr.bytes()
	for e.cacheBytes > e.cfg.CacheBytes {
		back := e.cacheLRU.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheRec)
		e.cacheLRU.Remove(back)
		delete(e.cache, victim.tag)
		e.cacheBytes -= victim.bytes()
		e.cfg.Enclave.Free(victim.bytes())
	}
}

// noteTouch records the authoritative popularity for a segment-resident
// record. Under enclave memory pressure a new entry is skipped — the
// overlay is metadata, and losing a touch only reverts hits to the last
// durably baked value. Caller holds mu; never called under Oblivious
// (no popularity maintenance there).
func (e *Engine) noteTouch(tag mle.Tag, hits int64, last time.Time) {
	tr, ok := e.touched[tag]
	if !ok {
		if err := e.cfg.Enclave.Alloc(touchRecBytes); err != nil {
			return
		}
		tr = &touchRec{}
		e.touched[tag] = tr
	}
	tr.hits, tr.last = hits, last
	e.touchDirty[tag] = true
}

// dropTouch removes a tag's overlay entry (record deleted or rewritten
// with popularity baked in). Caller holds mu.
func (e *Engine) dropTouch(tag mle.Tag) {
	if _, ok := e.touched[tag]; ok {
		delete(e.touched, tag)
		e.cfg.Enclave.Free(touchRecBytes)
	}
	delete(e.touchDirty, tag)
}

// applyTouch overlays recorded popularity onto a record read from a
// segment. Max semantics keep it monotone no matter how overlay and
// baked copies interleave across flushes and compactions.
func (e *Engine) applyTouch(tag mle.Tag, rec *storeengine.Record) {
	if tr, ok := e.touched[tag]; ok {
		if tr.hits > rec.Hits {
			rec.Hits = tr.hits
		}
		if tr.last.After(rec.LastTouch) {
			rec.LastTouch = tr.last
		}
	}
}

// appendTouchesLocked writes walOpTouch frames for overlay entries —
// every entry when all is set (the WAL was just truncated), otherwise
// only those dirty since they last reached the log. Caller holds mu and
// applies the fsync policy.
func (e *Engine) appendTouchesLocked(all bool) error {
	emit := func(tag mle.Tag, tr *touchRec) error {
		err := e.wal.append(e.cfg.Enclave, walOpTouch, tag, storeengine.Record{Hits: tr.hits, LastTouch: tr.last})
		if err != nil {
			return err
		}
		e.st.WALRecords++
		return nil
	}
	if all {
		for tag, tr := range e.touched {
			if err := emit(tag, tr); err != nil {
				return err
			}
		}
	} else {
		for tag := range e.touchDirty {
			tr, ok := e.touched[tag]
			if !ok {
				continue
			}
			if err := emit(tag, tr); err != nil {
				return err
			}
		}
	}
	e.touchDirty = make(map[mle.Tag]bool)
	return nil
}

// cacheDelete drops a tag from the hot cache.
func (e *Engine) cacheDelete(tag mle.Tag) {
	if cr, ok := e.cache[tag]; ok {
		e.cacheLRU.Remove(cr.elem)
		delete(e.cache, tag)
		e.cacheBytes -= cr.bytes()
		e.cfg.Enclave.Free(cr.bytes())
	}
}

// Insert implements engine.Engine: WAL append (fsync per policy), then
// memtable apply, then flush if over budget. First version wins.
func (e *Engine) Insert(tag mle.Tag, rec storeengine.Record) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false, storeengine.ErrClosed
	}
	exists, err := e.existsLocked(tag)
	if err != nil {
		return false, err
	}
	if exists {
		return false, nil
	}
	stored := copyRecord(rec)
	if err := e.wal.append(e.cfg.Enclave, walOpPut, tag, stored); err != nil {
		return false, err
	}
	if e.cfg.Fsync == FsyncCommit {
		if err := e.wal.sync(); err != nil {
			return false, fmt.Errorf("logengine: wal fsync: %w", err)
		}
	}
	e.st.WALRecords++
	mr := &memRec{rec: stored}
	aerr := e.cfg.Enclave.ECall(func() error {
		if prev, had := e.memtable[tag]; had {
			// Overwriting a tombstone left by an earlier Remove.
			e.memBytes -= prev.bytes()
			e.cfg.Enclave.Free(prev.bytes())
		}
		if err := e.cfg.Enclave.Alloc(mr.bytes()); err != nil {
			return fmt.Errorf("metadata allocation: %w", err)
		}
		e.memtable[tag] = mr
		e.memBytes += mr.bytes()
		return nil
	})
	if aerr != nil {
		// The WAL already carries the record; a replay would resurrect
		// it. Append a compensating delete so the log and the memory
		// state agree.
		if derr := e.wal.append(e.cfg.Enclave, walOpDelete, tag, storeengine.Record{}); derr == nil && e.cfg.Fsync == FsyncCommit {
			_ = e.wal.sync()
		}
		return false, aerr
	}
	e.entries++
	e.valueBytes += stored.BlobSize
	e.dropTouch(tag) // a fresh record starts its popularity over
	if e.memBytes >= e.cfg.MemtableBytes {
		if err := e.flushLocked(); err != nil {
			return false, fmt.Errorf("logengine: flush: %w", err)
		}
	}
	return true, nil
}

// Contains implements engine.Engine: an existence probe over memtable,
// hot cache and segment indexes with no hit counting, cache promotion
// or recency updates. Like existsLocked it ignores TTL — the engine's
// index has no cheap TTL view — so a stale record reports present;
// callers treat the answer as a hint and tolerate a later Get missing.
func (e *Engine) Contains(tag mle.Tag) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false, storeengine.ErrClosed
	}
	return e.existsLocked(tag)
}

// existsLocked reports whether a live record for tag exists anywhere
// (memtable, segments), ignoring TTL — duplicate suppression is by
// presence, as in the memory engine.
func (e *Engine) existsLocked(tag mle.Tag) (bool, error) {
	if mr, ok := e.memtable[tag]; ok {
		return !mr.dead, nil
	}
	for i := len(e.segments) - 1; i >= 0; i-- {
		_, found, dead, err := e.segments[i].find(tag)
		if err != nil {
			return false, err
		}
		if found {
			return !dead, nil
		}
	}
	return false, nil
}

// Remove implements engine.Engine: locate the live record (its owner
// and size settle quota accounting), append a delete to the WAL, and
// tombstone the memtable.
func (e *Engine) Remove(tag mle.Tag) (storeengine.Record, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return storeengine.Record{}, false, storeengine.ErrClosed
	}
	var meta storeengine.Record
	if mr, ok := e.memtable[tag]; ok {
		if mr.dead {
			return storeengine.Record{}, false, nil
		}
		meta = storeengine.Record{
			BlobSize:  mr.rec.BlobSize,
			Owner:     mr.rec.Owner,
			Hits:      mr.rec.Hits,
			LastTouch: mr.rec.LastTouch,
		}
	} else {
		found := false
		for i := len(e.segments) - 1; i >= 0 && !found; i-- {
			sealed, ok, dead, err := e.segments[i].find(tag)
			if err != nil {
				return storeengine.Record{}, false, err
			}
			if !ok {
				continue
			}
			if dead {
				return storeengine.Record{}, false, nil
			}
			rec, uerr := unsealRecord(e.cfg.Enclave, sealed)
			if uerr != nil {
				// Unreadable record: still tombstone it so it stops
				// shadowing, but report unknown metadata.
				rec = storeengine.Record{}
			}
			meta = storeengine.Record{
				BlobSize:  rec.BlobSize,
				Owner:     rec.Owner,
				Hits:      rec.Hits,
				LastTouch: rec.LastTouch,
			}
			e.applyTouch(tag, &meta)
			found = true
		}
		if !found {
			return storeengine.Record{}, false, nil
		}
	}
	if err := e.wal.append(e.cfg.Enclave, walOpDelete, tag, storeengine.Record{}); err != nil {
		return storeengine.Record{}, false, err
	}
	if e.cfg.Fsync == FsyncCommit {
		if err := e.wal.sync(); err != nil {
			return storeengine.Record{}, false, err
		}
	}
	e.st.WALRecords++
	nr := &memRec{dead: true}
	_ = e.cfg.Enclave.ECall(func() error {
		if prev, had := e.memtable[tag]; had {
			e.memBytes -= prev.bytes()
			e.cfg.Enclave.Free(prev.bytes())
		}
		if err := e.cfg.Enclave.Alloc(nr.bytes()); err == nil {
			e.memtable[tag] = nr
			e.memBytes += nr.bytes()
		} else {
			e.memtable[tag] = nr // record the tombstone regardless
			e.memBytes += nr.bytes()
		}
		return nil
	})
	e.cacheDelete(tag)
	e.dropTouch(tag)
	e.entries--
	e.valueBytes -= meta.BlobSize
	return meta, true, nil
}

// flushLocked writes the memtable (live records and tombstones, sorted
// by tag) as a new immutable segment, commits it via the manifest, and
// truncates the WAL. Caller holds mu.
//
// Crash ordering: segment write + fsync → directory fsync → manifest
// swap (tmp + rename + dir fsync) → WAL truncate. A crash before the
// manifest swap leaves an orphan segment (deleted at recovery) and an
// intact WAL; a crash after it leaves the segment live and a stale WAL
// whose replay re-applies the same records idempotently.
func (e *Engine) flushLocked() error {
	if len(e.memtable) == 0 {
		return nil
	}
	records := make([]segRecord, 0, len(e.memtable))
	var sealErr error
	err := e.cfg.Enclave.ECall(func() error {
		for tag, mr := range e.memtable {
			sr := segRecord{tag: tag, dead: mr.dead}
			if !mr.dead {
				sealed, err := sealRecord(e.cfg.Enclave, mr.rec)
				if err != nil {
					sealErr = err
					return err
				}
				sr.blob = mr.rec.BlobSize
				sr.sealed = sealed
			}
			records = append(records, sr)
		}
		return nil
	})
	if err != nil {
		if sealErr != nil {
			return sealErr
		}
		return err
	}
	sort.Slice(records, func(i, j int) bool {
		return bytes.Compare(records[i].tag[:], records[j].tag[:]) < 0
	})

	id := e.nextSegID
	name := segmentName(id)
	path := filepath.Join(e.cfg.Dir, name)
	if err := writeSegment(path, records); err != nil {
		return err
	}
	if err := syncDir(e.cfg.Dir); err != nil {
		return err
	}
	seg, _, err := openSegment(path, id)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(e.segments)+1)
	for _, s := range e.segments {
		names = append(names, filepath.Base(s.path))
	}
	names = append(names, name)
	if err := writeManifest(e.cfg.Dir, names); err != nil {
		if cerr := seg.close(); cerr != nil {
			e.cfg.Logf("logengine: close orphan segment: %v", cerr)
		}
		os.Remove(path)
		return err
	}
	e.segments = append(e.segments, seg)
	e.nextSegID = id + 1
	if err := e.wal.reset(); err != nil {
		return err
	}
	e.cfg.Enclave.Free(e.memBytes)
	e.memtable = make(map[mle.Tag]*memRec)
	e.memBytes = 0
	e.st.Flushes++
	// The truncate discarded any persisted touch frames; re-emit the
	// whole overlay so segment-resident popularity still survives a
	// restart. (Memtable popularity was just baked into the segment.)
	if len(e.touched) > 0 {
		if err := e.appendTouchesLocked(true); err != nil {
			return err
		}
		if e.cfg.Fsync == FsyncCommit {
			return e.wal.sync()
		}
	}
	return nil
}

// copyRecord deep-copies a record so callers own what they receive and
// the engine owns what it keeps.
func copyRecord(rec storeengine.Record) storeengine.Record {
	out := rec
	out.Challenge = append([]byte(nil), rec.Challenge...)
	out.WrappedKey = append([]byte(nil), rec.WrappedKey...)
	out.Blob = append([]byte(nil), rec.Blob...)
	out.BlobSize = int64(len(rec.Blob))
	return out
}

// constantTimeTagEq compares tags with uniform work.
func constantTimeTagEq(a, b mle.Tag) bool {
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// Len implements engine.Engine.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.entries)
}

// ValueBytes implements engine.Engine.
func (e *Engine) ValueBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.valueBytes
}

// Iterate implements engine.Engine: a k-way merge over the memtable
// (sorted transiently) and every segment cursor, newest state winning,
// tombstones skipped. Memory stays bounded by the memtable keys plus
// one record per open cursor; segment payloads stream from disk one
// record at a time, so iteration works on stores larger than RAM.
//
// The engine lock is held for the whole walk (mutations would
// invalidate the cursors), so fn must not call back into the engine.
func (e *Engine) Iterate(fn func(tag mle.Tag, rec storeengine.Record) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.iterateLocked(fn)
}

func (e *Engine) iterateLocked(fn func(tag mle.Tag, rec storeengine.Record) bool) error {
	memKeys := make([]mle.Tag, 0, len(e.memtable))
	for tag := range e.memtable {
		memKeys = append(memKeys, tag)
	}
	sort.Slice(memKeys, func(i, j int) bool {
		return bytes.Compare(memKeys[i][:], memKeys[j][:]) < 0
	})
	cursors := make([]*cursor, len(e.segments))
	for i, s := range e.segments {
		cursors[i] = s.newCursor()
	}
	memIdx := 0
	for {
		// Pick the smallest tag across the memtable pointer and all
		// cursors; on ties, the newest tier wins (memtable beats any
		// segment; a later segment beats an earlier one).
		var (
			best    mle.Tag
			haveAny bool
		)
		if memIdx < len(memKeys) {
			best, haveAny = memKeys[memIdx], true
		}
		for _, c := range cursors {
			if !c.valid {
				continue
			}
			if !haveAny || bytes.Compare(c.tag[:], best[:]) < 0 {
				best, haveAny = c.tag, true
			}
		}
		if !haveAny {
			return nil
		}
		// Resolve the winner for `best` and advance every tier at it.
		var (
			winnerSealed []byte
			winnerMem    *memRec
			dead         bool
			resolved     bool
		)
		if memIdx < len(memKeys) && memKeys[memIdx] == best {
			winnerMem = e.memtable[best]
			dead = winnerMem.dead
			resolved = true
			memIdx++
		}
		for i := len(cursors) - 1; i >= 0; i-- { // newest segment first
			c := cursors[i]
			if c.valid && c.tag == best {
				if !resolved {
					winnerSealed = c.sealed
					dead = c.dead
					resolved = true
				}
				c.next()
			}
		}
		if dead {
			continue
		}
		var rec storeengine.Record
		if winnerMem != nil {
			rec = copyRecord(winnerMem.rec)
		} else {
			r, err := unsealRecord(e.cfg.Enclave, winnerSealed)
			if err != nil {
				// Skip unreadable records rather than abort a whole
				// export; Get on this tag will surface dangling.
				e.cfg.Logf("logengine: iterate: record %x failed authentication: %v", best[:8], err)
				continue
			}
			rec = r
			e.applyTouch(best, &rec)
		}
		if e.expired(rec.LastTouch) {
			continue
		}
		if !fn(best, rec) {
			return nil
		}
	}
}

// Oldest implements engine.Engine by scanning the merged view for the
// least recently touched record. O(n) over record headers and seals —
// LRU eviction against a disk-backed store is discouraged (size caps
// belong to the memory engine), but the semantics hold.
func (e *Engine) Oldest() (mle.Tag, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var (
		best  mle.Tag
		bestT time.Time
		found bool
	)
	_ = e.iterateLocked(func(tag mle.Tag, rec storeengine.Record) bool {
		if !found || rec.LastTouch.Before(bestT) {
			best, bestT, found = tag, rec.LastTouch, true
		}
		return true
	})
	return best, found
}

// Stats implements engine.Engine.
func (e *Engine) Stats() storeengine.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.st
	st.Entries = int(e.entries)
	st.ValueBytes = e.valueBytes
	st.WALBytes = e.wal.size
	st.Segments = len(e.segments)
	st.SegmentBytes = 0
	for _, s := range e.segments {
		st.SegmentBytes += s.size
	}
	return st
}

// Checkpoint implements engine.Engine: flush the memtable (which
// truncates the WAL) and fsync, so every acknowledged operation is in
// a durable segment regardless of fsync policy. Popularity goes with
// it: memtable hit counts are baked into the flushed segment and any
// still-dirty touch-overlay entries are appended as walOpTouch frames
// before the sync, so hit counts survive a restart.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return storeengine.ErrClosed
	}
	if err := e.flushLocked(); err != nil {
		return err
	}
	if err := e.appendTouchesLocked(false); err != nil {
		return err
	}
	return e.wal.sync()
}

// CompactNow merges all segments into one, dropping shadowed versions
// and — because the result is the oldest and only segment — all
// tombstones. The merge runs under the engine lock (v1 trades
// concurrency for simplicity).
func (e *Engine) CompactNow() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactLocked()
}

// Close implements engine.Engine: stop background work, flush, and
// release the files. A clean close leaves an empty WAL, so the next
// Open replays nothing.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	flushErr := e.flushLocked()
	if flushErr == nil {
		flushErr = e.appendTouchesLocked(false)
	}
	if flushErr == nil {
		flushErr = e.wal.sync()
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopBg)
	e.bgDone.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	var closeErr error
	if err := e.wal.close(); err != nil {
		closeErr = errors.Join(closeErr, fmt.Errorf("logengine: close wal: %w", err))
	}
	for _, s := range e.segments {
		if err := s.close(); err != nil {
			closeErr = errors.Join(closeErr, fmt.Errorf("logengine: close segment %s: %w", filepath.Base(s.path), err))
		}
	}
	e.releaseMemoryLocked()
	return errors.Join(flushErr, closeErr)
}

// Crash simulates kill -9 for tests and benchmarks: file handles are
// abandoned without flushing the memtable, syncing the WAL, or
// committing anything. State on disk is exactly what the kernel had
// been told so far.
func (e *Engine) Crash() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopBg)
	e.bgDone.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.wal.close() // abandoning handles is the point of a crash
	for _, s := range e.segments {
		_ = s.close()
	}
	e.releaseMemoryLocked()
}

// releaseMemoryLocked returns the memtable's and cache's enclave
// allocations. Caller holds mu with closed already set.
func (e *Engine) releaseMemoryLocked() {
	e.cfg.Enclave.Free(e.memBytes)
	e.memBytes = 0
	e.memtable = make(map[mle.Tag]*memRec)
	e.cfg.Enclave.Free(e.cacheBytes)
	e.cacheBytes = 0
	e.cache = make(map[mle.Tag]*cacheRec)
	e.cacheLRU = list.New()
	e.cfg.Enclave.Free(int64(len(e.touched)) * touchRecBytes)
	e.touched = make(map[mle.Tag]*touchRec)
	e.touchDirty = make(map[mle.Tag]bool)
}
