package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"speed/internal/telemetry"
)

// NodeStatus is one member's health as seen from its telemetry
// endpoints on one poll. A node that failed to answer has Err set and
// zero metrics; the console shows it as down rather than dropping it.
type NodeStatus struct {
	Addr string
	Err  error

	Gets, Hits    int64
	Puts          int64
	Entries       int64
	BlobBytes     int64
	ActiveConns   int64
	AuthFailures  int64
	AuthFailBytes int64
	WireIn        int64
	WireOut       int64
	Failovers     int64
	ReadRepairs   int64
	P99           time.Duration

	TraceTotal uint64
	Events     []telemetry.TraceEvent
}

// HitRate returns the node's dedup hit ratio in [0,1] (0 when it has
// served no gets).
func (n NodeStatus) HitRate() float64 {
	if n.Gets == 0 {
		return 0
	}
	return float64(n.Hits) / float64(n.Gets)
}

// Poller scrapes a set of telemetry endpoints. The zero value is
// usable: it polls with a 2-second timeout and pulls up to 64 trace
// events per node.
type Poller struct {
	Client     *http.Client
	TraceLimit int
}

func (p *Poller) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

func (p *Poller) traceLimit() int {
	if p.TraceLimit > 0 {
		return p.TraceLimit
	}
	return 64
}

// baseURL normalizes a member address ("host:port" or a full URL) into
// an http base URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// Poll scrapes every node concurrently and returns one status per
// node, in input order.
func (p *Poller) Poll(addrs []string) []NodeStatus {
	out := make([]NodeStatus, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = p.PollNode(addr)
		}()
	}
	wg.Wait()
	return out
}

// PollNode scrapes one node's /metrics and /debug/trace.
func (p *Poller) PollNode(addr string) NodeStatus {
	st := NodeStatus{Addr: addr}
	base := baseURL(addr)

	resp, err := p.client().Get(base + "/metrics")
	if err != nil {
		st.Err = err
		return st
	}
	m, err := ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		st.Err = fmt.Errorf("parse metrics: %w", err)
		return st
	}
	st.Gets = int64(m.Sum("speed_store_gets_total"))
	st.Hits = int64(m.Sum("speed_store_hits_total"))
	st.Puts = int64(m.Sum("speed_store_puts_total"))
	st.Entries = int64(m.Sum("speed_store_entries"))
	st.BlobBytes = int64(m.Sum("speed_store_blob_bytes"))
	st.ActiveConns = int64(m.Sum("speed_server_active_connections"))
	st.AuthFailures = int64(m.Sum("speed_wire_auth_failures_total"))
	st.AuthFailBytes = int64(m.Sum("speed_wire_auth_fail_bytes_total"))
	st.WireIn = int64(m.Sum("speed_server_wire_bytes_in_total"))
	st.WireOut = int64(m.Sum("speed_server_wire_bytes_out_total"))
	st.Failovers = int64(m.Sum("speed_cluster_failovers_total"))
	st.ReadRepairs = int64(m.Sum("speed_cluster_read_repairs_total"))
	if p99, ok := m.Quantile("speed_server_request_seconds", 0.99); ok {
		st.P99 = time.Duration(p99 * float64(time.Second))
	} else if p99, ok := m.Quantile("speed_execute_seconds", 0.99); ok {
		// A client-side endpoint (runtime registry) has no server
		// histogram; fall back to end-to-end Execute latency.
		st.P99 = time.Duration(p99 * float64(time.Second))
	}

	dump, err := p.pollTrace(base)
	if err != nil {
		st.Err = fmt.Errorf("trace: %w", err)
		return st
	}
	st.TraceTotal = dump.Total
	st.Events = dump.Events
	if st.Addr == "" {
		st.Addr = dump.Node
	}
	return st
}

// pollTrace fetches one node's recent trace events.
func (p *Poller) pollTrace(base string) (telemetry.TraceDump, error) {
	var dump telemetry.TraceDump
	resp, err := p.client().Get(fmt.Sprintf("%s/debug/trace?limit=%d", base, p.traceLimit()))
	if err != nil {
		return dump, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return dump, err
	}
	return dump, nil
}
