package wire

import (
	"encoding/binary"
	"fmt"
)

// Protocol versions. The version is negotiated in the attested
// handshake: each side carries its highest supported version in byte 32
// of the hello's key-exchange data (the first 32 bytes are the X25519
// public key). Version-1 peers leave that byte zero, so a zero is read
// as ProtocolV1 and the serial request/response discipline is kept —
// old clients and servers interoperate with new ones unchanged. The
// version byte is covered by the attestation report MAC, so a
// network adversary cannot downgrade the negotiation.
const (
	// ProtocolV1 is the paper prototype's synchronous protocol: one
	// request per connection at a time, responses in request order, no
	// request IDs, no batch messages.
	ProtocolV1 = 1
	// ProtocolV2 multiplexes one secure channel: every message frame is
	// an envelope carrying an 8-byte request ID, responses may arrive
	// out of order, and the batch GET/PUT messages are available.
	ProtocolV2 = 2
	// MaxProtocol is the highest version this build speaks.
	MaxProtocol = ProtocolV2
)

// envelopeHeaderLen is the request-ID prefix of every v2 message frame.
const envelopeHeaderLen = 8

// MarshalEnvelope serialises a v2 message frame: the 8-byte big-endian
// request ID followed by the marshalled message. Requests and their
// responses carry the same ID; the client mux correlates them.
func MarshalEnvelope(id uint64, m Message) []byte {
	return AppendEnvelope(make([]byte, 0, envelopeHeaderLen+64), id, m)
}

// AppendEnvelope serialises a v2 message frame into buf, returning the
// extended slice. Channel.SendEnvelope uses it with the channel's
// marshal scratch so envelope framing allocates nothing in steady
// state.
func AppendEnvelope(buf []byte, id uint64, m Message) []byte {
	buf = binary.BigEndian.AppendUint64(buf, id)
	return AppendMarshal(buf, m)
}

// UnmarshalEnvelope parses a v2 message frame produced by
// MarshalEnvelope.
func UnmarshalEnvelope(b []byte) (uint64, Message, error) {
	if len(b) < envelopeHeaderLen {
		return 0, nil, fmt.Errorf("%w: short envelope (%d bytes)", ErrMalformed, len(b))
	}
	id := binary.BigEndian.Uint64(b)
	m, err := Unmarshal(b[envelopeHeaderLen:])
	if err != nil {
		return 0, nil, err
	}
	return id, m, nil
}
