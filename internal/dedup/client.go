package dedup

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// StoreClient is the runtime's view of the encrypted ResultStore. Both
// deployments of Section IV-B are supported: a store on the same
// machine (LocalClient) and a store on a dedicated server reached over
// the attested secure channel (RemoteClient).
type StoreClient interface {
	// Get performs a GET_REQUEST for the tag.
	Get(tag mle.Tag) (mle.Sealed, bool, error)
	// Put performs a PUT_REQUEST for the tag. With replace true, any
	// existing entry is overwritten (used after the stored entry
	// failed verification at this application).
	Put(tag mle.Tag, sealed mle.Sealed, replace bool) error
	// Ping checks that the store is reachable and serving, without
	// performing (or fabricating) any dictionary operation: health
	// probes must not pollute the store's GET/hit statistics. A nil
	// return means a full request round trip succeeded.
	Ping() error
	// Close releases the client's resources.
	Close() error
}

// BatchClient is implemented by store clients that can carry many GETs
// or PUTs per round trip (protocol v2). Callers should type-assert and
// fall back to per-item StoreClient calls when the interface is absent.
type BatchClient interface {
	StoreClient
	// GetBatch answers one GetResult per tag, positionally. A nil error
	// guarantees len(results) == len(tags).
	GetBatch(tags []mle.Tag) ([]wire.GetResult, error)
	// PutBatch uploads the items, answering one PutResult per item,
	// positionally. Per-item rejections (quota, authorization) land in
	// the results, not the error.
	PutBatch(items []wire.PutItem) ([]wire.PutResult, error)
}

// ErrHasBatchUnsupported is returned by HasBatch when the store (or
// the negotiated channel) cannot answer existence probes — a peer that
// predates FeatureChunking, or a v1 connection. Callers fall back to
// assuming every probed tag is missing: uploading a chunk the store
// already holds is harmless (first version wins).
var ErrHasBatchUnsupported = errors.New("dedup: store does not support existence probes")

// HasBatcher is implemented by store clients that can probe tag
// existence without fetching payloads, counting hits or refreshing
// recency — the question chunked dedup asks before transferring sealed
// chunks. Callers type-assert and treat an absent interface (or
// ErrHasBatchUnsupported) as "all missing". Answers are hints: a
// probed-present entry can expire before a later GET, which surfaces
// as a loud reassembly failure and a recompute, never a wrong result.
type HasBatcher interface {
	StoreClient
	// HasBatch reports, positionally, which tags are present.
	HasBatch(tags []mle.Tag) ([]bool, error)
}

// TracedClient is implemented by store clients that can propagate a
// distributed-trace context with each request, so a sampled Execute's
// trace ID reaches the store node (or nodes) that served it and their
// spans assemble into one cross-node trace. Callers type-assert and
// fall back to the plain StoreClient calls when the interface is
// absent; implementations must behave identically to their untraced
// counterparts when tc is not sampled.
type TracedClient interface {
	StoreClient
	// GetTraced is Get carrying a trace context.
	GetTraced(tc wire.TraceContext, tag mle.Tag) (mle.Sealed, bool, error)
	// PutTraced is Put carrying a trace context.
	PutTraced(tc wire.TraceContext, tag mle.Tag, sealed mle.Sealed, replace bool) error
	// GetBatchTraced is BatchClient.GetBatch carrying a trace context.
	GetBatchTraced(tc wire.TraceContext, tags []mle.Tag) ([]wire.GetResult, error)
	// PutBatchTraced is BatchClient.PutBatch carrying a trace context.
	PutBatchTraced(tc wire.TraceContext, items []wire.PutItem) ([]wire.PutResult, error)
}

// ErrPutRejected is returned when the store refuses a PUT, e.g. due to
// the quota mechanism.
var ErrPutRejected = errors.New("dedup: store rejected put")

// LocalClient talks to a Store in the same process, modelling the
// paper's default deployment of the ResultStore "at the same machine of
// the outsourced applications". Requests still pass through the store
// enclave's ECALLs, so transition costs are accounted identically to
// the networked path minus the socket.
type LocalClient struct {
	store *store.Store
	owner enclave.Measurement
}

var (
	_ BatchClient = (*LocalClient)(nil)
	_ HasBatcher  = (*LocalClient)(nil)
)

// NewLocalClient creates a client operating on behalf of the
// application with the given measurement.
func NewLocalClient(st *store.Store, owner enclave.Measurement) *LocalClient {
	return &LocalClient{store: st, owner: owner}
}

// Get implements StoreClient. Authorization denials present as misses,
// matching the over-the-wire behaviour (deny without information).
func (c *LocalClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	sealed, found, err := c.store.GetAs(c.owner, tag)
	if errors.Is(err, store.ErrUnauthorized) {
		return mle.Sealed{}, false, nil
	}
	return sealed, found, err
}

// Put implements StoreClient.
func (c *LocalClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	put := c.store.Put
	if replace {
		put = c.store.PutReplace
	}
	_, err := put(c.owner, tag, sealed)
	if errors.Is(err, store.ErrQuota) || errors.Is(err, store.ErrUnauthorized) {
		return fmt.Errorf("%w: %v", ErrPutRejected, err)
	}
	return err
}

// GetBatch implements BatchClient. There is no wire to amortise
// in-process, so it is a straight loop over the store.
func (c *LocalClient) GetBatch(tags []mle.Tag) ([]wire.GetResult, error) {
	results := make([]wire.GetResult, len(tags))
	for i, tag := range tags {
		sealed, found, err := c.Get(tag)
		if err != nil {
			return nil, err
		}
		results[i] = wire.GetResult{Found: found, Sealed: sealed}
	}
	return results, nil
}

// PutBatch implements BatchClient.
func (c *LocalClient) PutBatch(items []wire.PutItem) ([]wire.PutResult, error) {
	results := make([]wire.PutResult, len(items))
	for i, it := range items {
		err := c.Put(it.Tag, it.Sealed, it.Replace)
		switch {
		case errors.Is(err, ErrPutRejected):
			results[i] = wire.PutResult{OK: false, Err: err.Error()}
		case err != nil:
			return nil, err
		default:
			results[i] = wire.PutResult{OK: true}
		}
	}
	return results, nil
}

// HasBatch implements HasBatcher. The store maps authorization
// denials to absent itself (deny without information).
func (c *LocalClient) HasBatch(tags []mle.Tag) ([]bool, error) {
	present := make([]bool, len(tags))
	for i, tag := range tags {
		p, err := c.store.HasAs(c.owner, tag)
		if err != nil {
			return nil, err
		}
		present[i] = p
	}
	return present, nil
}

// Ping implements StoreClient: the in-process store is "reachable"
// exactly while it is open. No dictionary operation is performed.
func (c *LocalClient) Ping() error {
	if c.store.Closed() {
		return store.ErrClosed
	}
	return nil
}

// Close implements StoreClient; the local client does not own the
// store, so it is a no-op.
func (c *LocalClient) Close() error { return nil }

// RemoteConfig tunes the robustness behaviour of a RemoteClient. The
// zero value selects the defaults noted on each field.
type RemoteConfig struct {
	// DialTimeout bounds the TCP connect plus the attested handshake of
	// each (re)connection attempt. Defaults to 5s; negative disables.
	DialTimeout time.Duration
	// RequestTimeout bounds one GET/PUT round trip on the channel, so a
	// stalled store can never wedge a caller. Defaults to 5s; negative
	// disables.
	RequestTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transient
	// failure (connection reset, timeout, rate-limit rejection) before
	// the error is surfaced. Defaults to 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry delay; each further retry doubles
	// it, with ±50% jitter, up to RetryMaxBackoff. Defaults to
	// 50ms / 2s.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// MaxProtocol pins the highest wire protocol version offered in the
	// handshake; 0 means wire.MaxProtocol. Pinning to wire.ProtocolV1
	// forces the serial request path (compatibility testing,
	// conservative rollouts).
	MaxProtocol int
	// Trust optionally accepts a store on a remote machine whose
	// platform attestation key is listed (remote attestation).
	Trust *wire.Trust
	// Lazy defers the first connection to the first request, so a
	// client can be created while the store is still down. Combined
	// with the runtime's degradation mode the application starts
	// compute-only and picks up deduplication when the store appears.
	Lazy bool
	// Telemetry, when non-nil, registers the client's retry and
	// reconnect counters and its in-flight-request gauge so the
	// registry sees them directly rather than through the runtime's
	// Stats probe.
	Telemetry *telemetry.Registry
}

func (cfg *RemoteConfig) fillDefaults() {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryMaxBackoff <= 0 {
		cfg.RetryMaxBackoff = 2 * time.Second
	}
	if cfg.MaxProtocol == 0 {
		cfg.MaxProtocol = wire.MaxProtocol
	}
}

// RemoteClient talks to a store server over an attested secure channel.
// On a protocol-v2 connection the channel is a mux: any number of
// goroutines may issue requests concurrently and their round trips
// overlap on the single connection, with responses correlated by
// request ID. Against a v1 peer (the paper prototype's synchronous
// protocol, Section IV-B) requests fall back to the serial
// one-at-a-time discipline. Either way, requests carry per-request
// deadlines and transient failures are retried with jittered
// exponential backoff, transparently re-dialing and re-handshaking the
// attested channel when the previous one broke.
type RemoteClient struct {
	cfg RemoteConfig

	// Redial parameters; canRedial is false for clients wrapped around
	// an externally established channel.
	addr      string
	app       *enclave.Enclave
	storeMeas enclave.Measurement
	canRedial bool

	retries    atomic.Int64
	reconnects atomic.Int64
	inflight   atomic.Int64

	// Telemetry mirrors; nil-safe no-ops when RemoteConfig.Telemetry
	// was nil.
	retriesC    *telemetry.Counter
	reconnectsC *telemetry.Counter
	inflightG   *telemetry.Gauge

	// mu guards the connection state below. It is held only to
	// install, read or tear down the connection — never across a round
	// trip — so concurrent callers on a v2 mux proceed in parallel.
	mu     sync.Mutex
	ch     *wire.Channel // nil while disconnected
	mux    *chanMux      // non-nil iff ch speaks ProtocolV2
	closed bool

	// serialMu serialises send/recv pairs on a v1 channel, where the
	// wire protocol itself imposes one request at a time. Unused on v2.
	serialMu sync.Mutex
}

var (
	_ BatchClient  = (*RemoteClient)(nil)
	_ TracedClient = (*RemoteClient)(nil)
	_ HasBatcher   = (*RemoteClient)(nil)
)

// Dial connects to a store server at addr on the same platform,
// performing the attested handshake from the application enclave app
// and requiring the server to prove the expected store measurement.
func Dial(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement) (*RemoteClient, error) {
	return DialConfig(addr, app, storeMeasurement, RemoteConfig{})
}

// DialTrust is Dial that additionally accepts a store on a remote
// machine whose platform attestation key is in trust (remote
// attestation) — the cross-machine "master ResultStore" deployment of
// Section IV-B.
func DialTrust(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement, trust *wire.Trust) (*RemoteClient, error) {
	return DialConfig(addr, app, storeMeasurement, RemoteConfig{Trust: trust})
}

// DialConfig is Dial with explicit robustness configuration.
func DialConfig(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement, cfg RemoteConfig) (*RemoteClient, error) {
	cfg.fillDefaults()
	c := &RemoteClient{
		cfg:       cfg,
		addr:      addr,
		app:       app,
		storeMeas: storeMeasurement,
		canRedial: true,
	}
	if cfg.Telemetry != nil {
		appLabel := telemetry.L("app", app.Name())
		c.retriesC = cfg.Telemetry.NewCounter("speed_client_retries_total",
			"store request retries after transient failures", appLabel)
		c.reconnectsC = cfg.Telemetry.NewCounter("speed_client_reconnects_total",
			"successful re-dials of the attested store channel", appLabel)
		c.inflightG = cfg.Telemetry.NewGauge("speed_client_inflight_requests",
			"store requests currently awaiting a reply", appLabel)
	}
	if !cfg.Lazy {
		ch, err := c.dialChannel()
		if err != nil {
			return nil, err
		}
		c.installLocked(ch)
	}
	return c, nil
}

// NewRemoteClient wraps an already-established channel. Reconnection
// is unavailable (the client does not know how the channel was built),
// so a broken channel is terminal for the client.
func NewRemoteClient(ch *wire.Channel) *RemoteClient {
	cfg := RemoteConfig{}
	cfg.fillDefaults()
	c := &RemoteClient{cfg: cfg}
	c.installLocked(ch)
	return c
}

// Retries reports the number of request retries performed.
func (c *RemoteClient) Retries() int64 { return c.retries.Load() }

// Reconnects reports the number of successful re-dials (not counting
// the initial connection).
func (c *RemoteClient) Reconnects() int64 { return c.reconnects.Load() }

// Inflight reports the number of requests currently awaiting a reply.
func (c *RemoteClient) Inflight() int64 { return c.inflight.Load() }

// ProtocolVersion reports the negotiated wire protocol version of the
// current connection, or 0 while disconnected.
func (c *RemoteClient) ProtocolVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ch == nil {
		return 0
	}
	return c.ch.Version()
}

// dialChannel establishes one attested channel, bounding connect plus
// handshake with DialTimeout.
func (c *RemoteClient) dialChannel() (*wire.Channel, error) {
	timeout := c.cfg.DialTimeout
	if timeout < 0 {
		timeout = 0
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dedup: dial store: %w", err)
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	ch, err := wire.ClientHandshakeVersion(conn, c.app, c.storeMeas, c.cfg.Trust, c.cfg.MaxProtocol)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dedup: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return ch, nil
}

// installLocked installs a fresh channel as the current connection,
// spawning the demultiplexer when it negotiated v2. Caller holds c.mu
// (or owns c exclusively during construction).
func (c *RemoteClient) installLocked(ch *wire.Channel) {
	c.ch = ch
	c.mux = nil
	if ch != nil && ch.Version() >= wire.ProtocolV2 {
		c.mux = newChanMux(ch)
	}
}

// connect returns the current connection, dialing one first when
// disconnected. Concurrent callers racing to reconnect serialise here
// and share the single fresh channel.
func (c *RemoteClient) connect() (*wire.Channel, *chanMux, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, errClientClosed
	}
	if c.ch == nil {
		if !c.canRedial {
			return nil, nil, errors.New("dedup: store channel lost (no redial information)")
		}
		ch, err := c.dialChannel()
		if err != nil {
			return nil, nil, err
		}
		c.installLocked(ch)
		c.reconnects.Add(1)
		c.reconnectsC.Inc()
	}
	return c.ch, c.mux, nil
}

// dropConn tears down the given channel if it is still the current
// connection, so the next attempt re-dials. A channel replaced by a
// concurrent reconnect is left alone.
func (c *RemoteClient) dropConn(ch *wire.Channel) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ch != ch || ch == nil {
		return
	}
	if c.mux != nil {
		c.mux.fail(errors.New("dedup: store channel poisoned"))
	}
	ch.Close()
	c.ch, c.mux = nil, nil
}

// errClientClosed is returned from requests after Close.
var errClientClosed = errors.New("dedup: remote client closed")

// roundTrip sends one request and waits for its reply, applying the
// per-request deadline, retry policy and transparent reconnect. A
// sampled tc rides in the v2 envelope; the serial v1 protocol has no
// place for it and drops it.
func (c *RemoteClient) roundTrip(req wire.Message, tc wire.TraceContext) (wire.Message, error) {
	attempts := 1 + c.cfg.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			c.retriesC.Inc()
			sleepJittered(backoff)
			backoff *= 2
			if backoff > c.cfg.RetryMaxBackoff {
				backoff = c.cfg.RetryMaxBackoff
			}
		}
		msg, err := c.tryOnce(req, tc)
		if err != nil {
			lastErr = err
			if !isTransient(err) {
				return nil, err
			}
			continue
		}
		// A rate-limited PUT is the store asking us to slow down
		// (Section III-D quota); honour it by backing off and retrying
		// unless this was the final attempt.
		if pr, ok := msg.(wire.PutResponse); ok && !pr.OK && isRateLimited(pr.Err) && attempt < attempts-1 {
			lastErr = fmt.Errorf("%w: %s", ErrPutRejected, pr.Err)
			continue
		}
		return msg, nil
	}
	return nil, lastErr
}

// tryOnce performs a single request attempt on the current connection,
// (re)connecting first if necessary. On a v2 connection the request
// travels through the mux and overlaps with other callers'; on v1 the
// serial discipline is enforced here (batch requests are emulated with
// a loop of serial round trips). Any transport error poisons the
// channel (its cipher counters can no longer match the peer's), so the
// connection is dropped and the next attempt re-handshakes.
func (c *RemoteClient) tryOnce(req wire.Message, tc wire.TraceContext) (wire.Message, error) {
	return c.tryRequest(req, tc, false)
}

// tryRequest is tryOnce with an escape hatch: with direct true the
// message is sent verbatim on a v1 channel instead of going through the
// batch unrolling of serialRequest. Ping depends on this — a zero-item
// batch GET unrolls into zero round trips, which would "probe" the
// store without touching the wire at all.
func (c *RemoteClient) tryRequest(req wire.Message, tc wire.TraceContext, direct bool) (wire.Message, error) {
	ch, mux, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.inflight.Add(1)
	c.inflightG.Add(1)
	defer func() {
		c.inflight.Add(-1)
		c.inflightG.Add(-1)
	}()

	if mux != nil {
		msg, err := mux.roundTrip(req, tc, c.cfg.RequestTimeout)
		if err != nil {
			c.dropConn(ch)
			if c.isClosed() {
				// Close raced with the request; surface the
				// deterministic terminal error rather than whatever the
				// dying transport produced.
				return nil, errClientClosed
			}
			return nil, err
		}
		return msg, nil
	}

	c.serialMu.Lock()
	defer c.serialMu.Unlock()
	var msg wire.Message
	if direct {
		msg, err = c.serialRoundTrip(ch, req)
	} else {
		msg, err = c.serialRequest(ch, req)
	}
	if err != nil {
		c.dropConn(ch)
		if c.isClosed() {
			return nil, errClientClosed
		}
		return nil, err
	}
	return msg, nil
}

func (c *RemoteClient) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// serialRequest performs one request on a v1 channel under the caller's
// serialMu. Batch messages are not part of the v1 protocol, so they
// are unrolled into serial round trips here — callers get batch
// semantics against old stores, just without the wire amortisation.
func (c *RemoteClient) serialRequest(ch *wire.Channel, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case wire.BatchGetRequest:
		resp := wire.BatchGetResponse{Results: make([]wire.GetResult, len(m.Tags))}
		for i, tag := range m.Tags {
			msg, err := c.serialRoundTrip(ch, wire.GetRequest{Tag: tag})
			if err != nil {
				return nil, err
			}
			gr, ok := msg.(wire.GetResponse)
			if !ok {
				return nil, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
			}
			resp.Results[i] = wire.GetResult{Found: gr.Found, Sealed: gr.Sealed}
		}
		return resp, nil
	case wire.BatchPutRequest:
		resp := wire.BatchPutResponse{Results: make([]wire.PutResult, len(m.Items))}
		for i, it := range m.Items {
			msg, err := c.serialRoundTrip(ch, wire.PutRequest{Tag: it.Tag, Sealed: it.Sealed, Replace: it.Replace})
			if err != nil {
				return nil, err
			}
			pr, ok := msg.(wire.PutResponse)
			if !ok {
				return nil, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
			}
			resp.Results[i] = wire.PutResult{OK: pr.OK, Err: pr.Err}
		}
		return resp, nil
	default:
		return c.serialRoundTrip(ch, req)
	}
}

// serialRoundTrip is one v1 send/recv pair with the request deadline
// applied to the channel.
func (c *RemoteClient) serialRoundTrip(ch *wire.Channel, req wire.Message) (wire.Message, error) {
	if c.cfg.RequestTimeout > 0 {
		ch.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	}
	err := ch.SendMessage(req)
	var msg wire.Message
	if err == nil {
		msg, err = ch.RecvMessage()
	}
	if c.cfg.RequestTimeout > 0 {
		ch.SetDeadline(time.Time{})
	}
	if err != nil {
		return nil, err
	}
	return msg, nil
}

// isTransient reports whether a request error is worth retrying on a
// fresh connection: timeouts, connection resets/refusals and peer
// closes. Attestation failures and protocol violations are not.
func isTransient(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	return false
}

// isRateLimited recognises the store's rate-limit rejection reason in a
// PutResponse (the byte-space quota, by contrast, is not transient).
func isRateLimited(reason string) bool {
	return strings.Contains(reason, "rate limit")
}

// sleepJittered sleeps for d ±50%, decorrelating the retry schedules
// of concurrent clients hammering a recovering store.
func sleepJittered(d time.Duration) {
	if d <= 0 {
		return
	}
	half := int64(d / 2)
	time.Sleep(time.Duration(half + rand.Int63n(half+1)))
}

// Get implements StoreClient.
func (c *RemoteClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	return c.GetTraced(wire.TraceContext{}, tag)
}

// GetTraced implements TracedClient.
func (c *RemoteClient) GetTraced(tc wire.TraceContext, tag mle.Tag) (mle.Sealed, bool, error) {
	msg, err := c.roundTrip(wire.GetRequest{Tag: tag}, tc)
	if err != nil {
		return mle.Sealed{}, false, fmt.Errorf("dedup: get: %w", err)
	}
	resp, ok := msg.(wire.GetResponse)
	if !ok {
		return mle.Sealed{}, false, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
	}
	return resp.Sealed, resp.Found, nil
}

// Put implements StoreClient.
func (c *RemoteClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	return c.PutTraced(wire.TraceContext{}, tag, sealed, replace)
}

// PutTraced implements TracedClient.
func (c *RemoteClient) PutTraced(tc wire.TraceContext, tag mle.Tag, sealed mle.Sealed, replace bool) error {
	msg, err := c.roundTrip(wire.PutRequest{Tag: tag, Sealed: sealed, Replace: replace}, tc)
	if err != nil {
		return fmt.Errorf("dedup: put: %w", err)
	}
	resp, ok := msg.(wire.PutResponse)
	if !ok {
		return fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
	}
	if !resp.OK {
		return fmt.Errorf("%w: %s", ErrPutRejected, resp.Err)
	}
	return nil
}

// GetBatch implements BatchClient: one round trip per
// wire.MaxBatchItems chunk on a v2 connection, a serial loop against a
// v1 store.
func (c *RemoteClient) GetBatch(tags []mle.Tag) ([]wire.GetResult, error) {
	return c.GetBatchTraced(wire.TraceContext{}, tags)
}

// GetBatchTraced implements TracedClient.
func (c *RemoteClient) GetBatchTraced(tc wire.TraceContext, tags []mle.Tag) ([]wire.GetResult, error) {
	if len(tags) == 0 {
		return nil, nil
	}
	results := make([]wire.GetResult, 0, len(tags))
	for start := 0; start < len(tags); start += wire.MaxBatchItems {
		end := start + wire.MaxBatchItems
		if end > len(tags) {
			end = len(tags)
		}
		chunk := tags[start:end]
		msg, err := c.roundTrip(wire.BatchGetRequest{Tags: chunk}, tc)
		if err != nil {
			return nil, fmt.Errorf("dedup: batch get: %w", err)
		}
		resp, ok := msg.(wire.BatchGetResponse)
		if !ok {
			return nil, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
		}
		if len(resp.Results) != len(chunk) {
			return nil, fmt.Errorf("dedup: batch get: %d results for %d tags", len(resp.Results), len(chunk))
		}
		results = append(results, resp.Results...)
	}
	return results, nil
}

// PutBatch implements BatchClient. Unlike Put, rate-limited items are
// reported in their PutResult rather than retried: retrying a subset
// of a batch would reorder it against concurrent batches for no
// benefit, and the runtime already treats rejected puts as advisory.
func (c *RemoteClient) PutBatch(items []wire.PutItem) ([]wire.PutResult, error) {
	return c.PutBatchTraced(wire.TraceContext{}, items)
}

// PutBatchTraced implements TracedClient.
func (c *RemoteClient) PutBatchTraced(tc wire.TraceContext, items []wire.PutItem) ([]wire.PutResult, error) {
	if len(items) == 0 {
		return nil, nil
	}
	results := make([]wire.PutResult, 0, len(items))
	for start := 0; start < len(items); start += wire.MaxBatchItems {
		end := start + wire.MaxBatchItems
		if end > len(items) {
			end = len(items)
		}
		chunk := items[start:end]
		msg, err := c.roundTrip(wire.BatchPutRequest{Items: chunk}, tc)
		if err != nil {
			return nil, fmt.Errorf("dedup: batch put: %w", err)
		}
		resp, ok := msg.(wire.BatchPutResponse)
		if !ok {
			return nil, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
		}
		if len(resp.Results) != len(chunk) {
			return nil, fmt.Errorf("dedup: batch put: %d results for %d items", len(resp.Results), len(chunk))
		}
		results = append(results, resp.Results...)
	}
	return results, nil
}

// Ping implements StoreClient: one liveness round trip that performs no
// dictionary operation. On a v2 connection it is a zero-item batch GET
// through the mux; on v1 the same empty frame is sent serially. Either
// way the full path — (re)dial, attested handshake, framing, store
// dispatch — is exercised, but the store executes zero GETs, so health
// probes never fabricate traffic or skew hit-rate statistics. Ping is a
// single attempt without the retry schedule: a probe should report the
// store's state now, and probers repeat on their own cadence.
func (c *RemoteClient) Ping() error {
	msg, err := c.tryRequest(wire.BatchGetRequest{}, wire.TraceContext{}, true)
	if err != nil {
		return fmt.Errorf("dedup: ping: %w", err)
	}
	resp, ok := msg.(wire.BatchGetResponse)
	if !ok {
		return fmt.Errorf("dedup: ping: unexpected reply %v", msg.Kind())
	}
	if len(resp.Results) != 0 {
		return fmt.Errorf("dedup: ping: %d results for an empty probe", len(resp.Results))
	}
	return nil
}

// HasBatch implements HasBatcher: one HAS_BATCH round trip per
// wire.MaxBatchItems chunk. The probe is gated on the negotiated
// channel capability — a v1 connection or a peer that did not offer
// FeatureChunking gets ErrHasBatchUnsupported without any frame sent,
// so old stores never see a message kind they cannot parse.
func (c *RemoteClient) HasBatch(tags []mle.Tag) ([]bool, error) {
	ch, _, err := c.connect()
	if err != nil {
		return nil, fmt.Errorf("dedup: has batch: %w", err)
	}
	if ch.Version() < wire.ProtocolV2 || ch.Features()&wire.FeatureChunking == 0 {
		return nil, ErrHasBatchUnsupported
	}
	if len(tags) == 0 {
		return nil, nil
	}
	present := make([]bool, 0, len(tags))
	for start := 0; start < len(tags); start += wire.MaxBatchItems {
		end := start + wire.MaxBatchItems
		if end > len(tags) {
			end = len(tags)
		}
		batch := tags[start:end]
		msg, err := c.roundTrip(wire.HasBatchRequest{Tags: batch}, wire.TraceContext{})
		if err != nil {
			return nil, fmt.Errorf("dedup: has batch: %w", err)
		}
		resp, ok := msg.(wire.HasBatchResponse)
		if !ok {
			return nil, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
		}
		if len(resp.Present) != len(batch) {
			return nil, fmt.Errorf("dedup: has batch: %d answers for %d tags", len(resp.Present), len(batch))
		}
		present = append(present, resp.Present...)
	}
	return present, nil
}

// SyncPull fetches up to max of the store's entries with at least
// minHits hits, most frequently hit first (the wire-level half of
// cluster.Syncer). max values outside (0, wire.MaxBatchItems] are
// clamped to wire.MaxBatchItems by the store. The store must understand
// the sync protocol; against an older store the request kills the
// session and surfaces a transport error.
func (c *RemoteClient) SyncPull(minHits int64, max int) ([]wire.SyncEntry, error) {
	req := wire.SyncPullRequest{MinHits: minHits}
	if max > 0 {
		req.Max = uint32(max)
	}
	msg, err := c.roundTrip(req, wire.TraceContext{})
	if err != nil {
		return nil, fmt.Errorf("dedup: sync pull: %w", err)
	}
	resp, ok := msg.(wire.SyncPullResponse)
	if !ok {
		return nil, fmt.Errorf("dedup: sync pull: unexpected reply %v", msg.Kind())
	}
	return resp.Entries, nil
}

// Close implements StoreClient. It is idempotent and safe to call
// concurrently with in-flight requests: waiters on a v2 mux are
// unblocked with errClientClosed, and any request racing the teardown
// surfaces errClientClosed rather than a transport error.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ch, mux := c.ch, c.mux
	c.ch, c.mux = nil, nil
	c.mu.Unlock()
	if mux != nil {
		// Fails every in-flight waiter with the deterministic terminal
		// error (and closes the underlying channel).
		mux.fail(errClientClosed)
		return nil
	}
	if ch != nil {
		return ch.Close()
	}
	return nil
}
