package sift

import "math"

// Keypoint is a detected scale-space extremum with its orientation and
// 128-dimensional descriptor.
type Keypoint struct {
	// X and Y are the keypoint coordinates in the original image.
	X, Y float64
	// Sigma is the absolute scale at which the keypoint was detected.
	Sigma float64
	// Octave and Level locate the keypoint in the pyramid.
	Octave, Level int
	// Orientation is the dominant gradient direction in radians.
	Orientation float64
	// Descriptor is the normalized 4x4x8 gradient histogram, quantized
	// to bytes as in Lowe's implementation.
	Descriptor [128]uint8
}

// Params tunes the detector. The zero value is not usable; use
// DefaultParams.
type Params struct {
	// Octaves is the number of pyramid octaves; 0 chooses the maximum
	// for the image size.
	Octaves int
	// ScalesPerOctave is Lowe's s parameter (default 3).
	ScalesPerOctave int
	// Sigma0 is the base blur (default 1.6).
	Sigma0 float64
	// ContrastThreshold rejects low-contrast extrema (default 0.03).
	ContrastThreshold float64
	// EdgeRatio rejects edge-like responses via the Hessian trace/det
	// ratio test (default 10).
	EdgeRatio float64
	// NoSubpixel disables the quadratic sub-pixel/sub-scale extremum
	// refinement (it is on by default; disable for speed or for
	// comparison with grid-quantized detectors).
	NoSubpixel bool
}

// DefaultParams returns Lowe's standard parameters.
func DefaultParams() Params {
	return Params{
		ScalesPerOctave:   3,
		Sigma0:            1.6,
		ContrastThreshold: 0.03,
		EdgeRatio:         10,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.ScalesPerOctave == 0 {
		p.ScalesPerOctave = d.ScalesPerOctave
	}
	if p.Sigma0 == 0 {
		p.Sigma0 = d.Sigma0
	}
	if p.ContrastThreshold == 0 {
		p.ContrastThreshold = d.ContrastThreshold
	}
	if p.EdgeRatio == 0 {
		p.EdgeRatio = d.EdgeRatio
	}
	return p
}

// Detect runs the full SIFT pipeline on the image and returns its
// keypoints with descriptors. The output ordering is deterministic
// (octave, level, row, column, orientation).
func Detect(img *Gray, params Params) []Keypoint {
	params = params.withDefaults()
	pyr := BuildPyramid(img, params.Octaves, params.ScalesPerOctave, params.Sigma0)
	dog := pyr.DoG()

	var kps []Keypoint
	for o := range dog {
		scale := float64(int(1) << o) // octave o is downsampled by 2^o
		for s := 1; s < len(dog[o])-1; s++ {
			prev, cur, next := dog[o][s-1], dog[o][s], dog[o][s+1]
			for y := 1; y < cur.H-1; y++ {
				for x := 1; x < cur.W-1; x++ {
					v := cur.Pix[y*cur.W+x]
					if math.Abs(float64(v)) < params.ContrastThreshold {
						continue
					}
					if !isExtremum(prev, cur, next, x, y, v) {
						continue
					}
					if isEdge(cur, x, y, params.EdgeRatio) {
						continue
					}
					fx, fy := float64(x), float64(y)
					fLevel := float64(s)
					if !params.NoSubpixel {
						r := refineExtremum(dog[o], x, y, s)
						if !r.ok {
							continue
						}
						if math.Abs(r.value) < params.ContrastThreshold {
							// Interpolated contrast check (stricter
							// than the discrete one above).
							continue
						}
						fx, fy, fLevel = r.x, r.y, r.level
					}
					// Interpolate sigma between scale levels.
					k := pyr.Sigmas[1] / pyr.Sigmas[0]
					sigma := pyr.Sigmas[0] * math.Pow(k, fLevel) * scale
					orients := orientations(pyr.Octaves[o][s], x, y, pyr.Sigmas[s])
					for _, th := range orients {
						kp := Keypoint{
							X:           fx * scale,
							Y:           fy * scale,
							Sigma:       sigma,
							Octave:      o,
							Level:       s,
							Orientation: th,
						}
						kp.Descriptor = describe(pyr.Octaves[o][s], x, y, pyr.Sigmas[s], th)
						kps = append(kps, kp)
					}
				}
			}
		}
	}
	return kps
}

// isExtremum reports whether cur(x,y)=v is a strict maximum or minimum
// of its 26 scale-space neighbours.
func isExtremum(prev, cur, next *Gray, x, y int, v float32) bool {
	isMax := true
	isMin := true
	for _, img := range []*Gray{prev, cur, next} {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if img == cur && dx == 0 && dy == 0 {
					continue
				}
				n := img.Pix[(y+dy)*img.W+(x+dx)]
				if n >= v {
					isMax = false
				}
				if n <= v {
					isMin = false
				}
				if !isMax && !isMin {
					return false
				}
			}
		}
	}
	return isMax || isMin
}

// isEdge applies Lowe's edge-response test: reject points where the
// ratio of principal curvatures exceeds r, i.e.
// tr(H)^2/det(H) >= (r+1)^2/r.
func isEdge(d *Gray, x, y int, r float64) bool {
	dxx := float64(d.At(x+1, y) + d.At(x-1, y) - 2*d.At(x, y))
	dyy := float64(d.At(x, y+1) + d.At(x, y-1) - 2*d.At(x, y))
	dxy := float64(d.At(x+1, y+1)-d.At(x+1, y-1)-d.At(x-1, y+1)+d.At(x-1, y-1)) / 4
	tr := dxx + dyy
	det := dxx*dyy - dxy*dxy
	if det <= 0 {
		return true
	}
	return tr*tr/det >= (r+1)*(r+1)/r
}
