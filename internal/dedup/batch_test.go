package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speed/internal/mle"
)

func batchInputs(n int) [][]byte {
	in := make([][]byte, n)
	for i := range in {
		in[i] = []byte(fmt.Sprintf("input-%d", i))
	}
	return in
}

func echoCompute(counter *atomic.Int64) func([]byte) ([]byte, error) {
	return func(in []byte) ([]byte, error) {
		if counter != nil {
			counter.Add(1)
		}
		return append([]byte("out:"), in...), nil
	}
}

func TestExecuteBatchEmpty(t *testing.T) {
	env := newTestEnv(t, nil)
	res, err := env.runtime.ExecuteBatch(env.funcID(t), nil, echoCompute(nil))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	if res != nil {
		t.Errorf("ExecuteBatch(nil) = %v, want nil", res)
	}
}

func TestExecuteBatchMissThenHit(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	inputs := batchInputs(8)
	var computes atomic.Int64

	res, err := env.runtime.ExecuteBatch(id, inputs, echoCompute(&computes))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	if len(res) != len(inputs) {
		t.Fatalf("got %d results, want %d", len(res), len(inputs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Outcome != OutcomeComputed {
			t.Errorf("item %d outcome = %v, want computed", i, r.Outcome)
		}
		want := append([]byte("out:"), inputs[i]...)
		if !bytes.Equal(r.Result, want) {
			t.Errorf("item %d result = %q, want %q", i, r.Result, want)
		}
	}
	if n := computes.Load(); n != 8 {
		t.Errorf("compute ran %d times, want 8", n)
	}

	// The whole second batch must be served from the store.
	res, err = env.runtime.ExecuteBatch(id, inputs, echoCompute(&computes))
	if err != nil {
		t.Fatalf("second ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Outcome != OutcomeReused {
			t.Errorf("item %d = (outcome %v, err %v), want reused", i, r.Outcome, r.Err)
		}
		want := append([]byte("out:"), inputs[i]...)
		if !bytes.Equal(r.Result, want) {
			t.Errorf("item %d result = %q, want %q", i, r.Result, want)
		}
	}
	if n := computes.Load(); n != 8 {
		t.Errorf("compute ran %d times after hit batch, want still 8", n)
	}

	st := env.runtime.Stats()
	if st.Calls != 16 || st.Computed != 8 || st.Reused != 8 {
		t.Errorf("Stats = calls %d computed %d reused %d, want 16/8/8", st.Calls, st.Computed, st.Reused)
	}
}

func TestExecuteBatchMixedHitMiss(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	inputs := batchInputs(6)

	// Pre-store results for half the inputs through the serial path.
	for i := 0; i < 3; i++ {
		if _, _, err := env.runtime.Execute(id, inputs[i], echoCompute(nil)); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	res, err := env.runtime.ExecuteBatch(id, inputs, echoCompute(nil))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	for i, r := range res {
		want := OutcomeComputed
		if i < 3 {
			want = OutcomeReused
		}
		if r.Err != nil || r.Outcome != want {
			t.Errorf("item %d = (outcome %v, err %v), want %v", i, r.Outcome, r.Err, want)
		}
	}
}

func TestExecuteBatchCoalescesDuplicateInputs(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	var computes atomic.Int64
	inputs := [][]byte{
		[]byte("same"), []byte("other"), []byte("same"), []byte("same"),
	}
	res, err := env.runtime.ExecuteBatch(id, inputs, echoCompute(&computes))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	if n := computes.Load(); n != 2 {
		t.Errorf("compute ran %d times, want 2 (duplicates shared)", n)
	}
	if res[0].Outcome != OutcomeComputed || res[1].Outcome != OutcomeComputed {
		t.Errorf("leader outcomes = %v, %v, want computed", res[0].Outcome, res[1].Outcome)
	}
	for _, i := range []int{2, 3} {
		if res[i].Outcome != OutcomeCoalesced {
			t.Errorf("duplicate item %d outcome = %v, want coalesced", i, res[i].Outcome)
		}
		if !bytes.Equal(res[i].Result, res[0].Result) {
			t.Errorf("duplicate item %d result differs from leader", i)
		}
	}
	if st := env.runtime.Stats(); st.Coalesced != 2 {
		t.Errorf("Stats.Coalesced = %d, want 2", st.Coalesced)
	}
}

func TestExecuteBatchDuplicatesSharedEvenWithoutCoalescing(t *testing.T) {
	// NoCoalesce disables cross-call flight sharing, but duplicates
	// within one batch are still computed once: they are one request.
	env := newTestEnv(t, func(cfg *Config) { cfg.NoCoalesce = true })
	id := env.funcID(t)
	var computes atomic.Int64
	inputs := [][]byte{[]byte("x"), []byte("x"), []byte("x")}
	res, err := env.runtime.ExecuteBatch(id, inputs, echoCompute(&computes))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i := 1; i < 3; i++ {
		if res[i].Err != nil || !bytes.Equal(res[i].Result, res[0].Result) {
			t.Errorf("item %d did not share the leader's result", i)
		}
	}
}

func TestExecuteBatchPerItemComputeError(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	inputs := batchInputs(5)
	boom := errors.New("boom")
	res, err := env.runtime.ExecuteBatch(id, inputs, func(in []byte) ([]byte, error) {
		if bytes.Equal(in, inputs[2]) {
			return nil, boom
		}
		return append([]byte("out:"), in...), nil
	})
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if i == 2 {
			if !errors.Is(r.Err, boom) {
				t.Errorf("item 2 err = %v, want boom", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("item %d err = %v, want nil (siblings unaffected)", i, r.Err)
		}
	}
	// The failed item must not have been stored: retrying it computes.
	res, err = env.runtime.ExecuteBatch(id, inputs[2:3], echoCompute(nil))
	if err != nil {
		t.Fatalf("retry ExecuteBatch: %v", err)
	}
	if res[0].Err != nil || res[0].Outcome != OutcomeComputed {
		t.Errorf("retry = (outcome %v, err %v), want computed", res[0].Outcome, res[0].Err)
	}
}

func TestExecuteBatchSerialParallelism(t *testing.T) {
	env := newTestEnv(t, func(cfg *Config) { cfg.BatchParallelism = 1 })
	id := env.funcID(t)
	inputs := batchInputs(6)
	var inFlight, maxInFlight atomic.Int64
	res, err := env.runtime.ExecuteBatch(id, inputs, func(in []byte) ([]byte, error) {
		cur := inFlight.Add(1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return in, nil
	})
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if m := maxInFlight.Load(); m != 1 {
		t.Errorf("max concurrent computes = %d, want 1 with BatchParallelism=1", m)
	}
}

// downClient is a StoreClient whose store is permanently unreachable.
type downClient struct{}

func (downClient) Get(mle.Tag) (mle.Sealed, bool, error) {
	return mle.Sealed{}, false, errors.New("store down")
}
func (downClient) Put(mle.Tag, mle.Sealed, bool) error { return errors.New("store down") }
func (downClient) Ping() error                         { return errors.New("store down") }
func (downClient) Close() error                        { return nil }

func TestExecuteBatchDegradesWhenStoreDown(t *testing.T) {
	env := newTestEnv(t, func(cfg *Config) {
		cfg.Client = downClient{}
		cfg.DegradeThreshold = 1
	})
	id := env.funcID(t)
	inputs := batchInputs(4)
	res, err := env.runtime.ExecuteBatch(id, inputs, echoCompute(nil))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Outcome != OutcomeComputed {
			t.Errorf("item %d = (outcome %v, err %v), want computed compute-only", i, r.Outcome, r.Err)
		}
	}
	st := env.runtime.Stats()
	if st.Degraded == 0 {
		t.Errorf("Stats.Degraded = 0, want > 0 after store failure")
	}
	if !env.runtime.Degraded() {
		t.Error("breaker did not open after batch GET failure")
	}
	// With the breaker open, the next batch skips the store entirely.
	res, err = env.runtime.ExecuteBatch(id, inputs, echoCompute(nil))
	if err != nil {
		t.Fatalf("second ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Outcome != OutcomeComputed {
			t.Errorf("degraded item %d = (outcome %v, err %v), want computed", i, r.Outcome, r.Err)
		}
	}
}

func TestExecuteBatchSurfacesStoreErrorWithoutDegradation(t *testing.T) {
	env := newTestEnv(t, func(cfg *Config) {
		cfg.Client = downClient{}
		cfg.DegradeThreshold = -1
	})
	id := env.funcID(t)
	inputs := batchInputs(3)
	res, err := env.runtime.ExecuteBatch(id, inputs, echoCompute(nil))
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("item %d err = nil, want store failure surfaced", i)
		}
	}
}

// gatedPutClient blocks the first PUT until released, pinning the
// caller's flight open while the test arranges concurrent work.
type gatedPutClient struct {
	StoreClient
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (c *gatedPutClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	c.once.Do(func() { close(c.entered) })
	<-c.release
	return c.StoreClient.Put(tag, sealed, replace)
}

func TestExecuteBatchJoinsInflightExecute(t *testing.T) {
	gate := &gatedPutClient{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	env := newTestEnv(t, func(cfg *Config) {
		gate.StoreClient = cfg.Client
		cfg.Client = gate
	})
	id := env.funcID(t)
	input := []byte("shared-input")

	execDone := make(chan error, 1)
	go func() {
		_, _, err := env.runtime.Execute(id, input, func(in []byte) ([]byte, error) {
			return []byte("slow-result"), nil
		})
		execDone <- err
	}()
	// Execute is now blocked inside its PUT, with its flight still
	// registered (flights close only after the upload attempt).
	<-gate.entered

	batchDone := make(chan struct{})
	var res []BatchResult
	var berr error
	go func() {
		defer close(batchDone)
		res, berr = env.runtime.ExecuteBatch(id, [][]byte{input}, func([]byte) ([]byte, error) {
			t.Error("batch computed an input already in flight")
			return nil, errors.New("unexpected compute")
		})
	}()
	// The batch must be blocked joining the flight, not done.
	select {
	case <-batchDone:
		t.Fatal("batch completed while the flight it should join was still open")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate.release)
	<-batchDone
	if err := <-execDone; err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if berr != nil {
		t.Fatalf("ExecuteBatch: %v", berr)
	}
	if res[0].Err != nil || res[0].Outcome != OutcomeCoalesced {
		t.Errorf("joined item = (outcome %v, err %v), want coalesced", res[0].Outcome, res[0].Err)
	}
	if string(res[0].Result) != "slow-result" {
		t.Errorf("joined item result = %q, want the flight's result", res[0].Result)
	}
}

func TestExecuteBatchLeadersVisibleToExecute(t *testing.T) {
	// While a batch leader computes, a concurrent Execute for the same
	// input must coalesce onto the batch's flight.
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	input := []byte("batch-led")

	block := make(chan struct{})
	started := make(chan struct{})
	type out struct {
		res []BatchResult
		err error
	}
	batchDone := make(chan out, 1)
	go func() {
		res, err := env.runtime.ExecuteBatch(id, [][]byte{input}, func(in []byte) ([]byte, error) {
			close(started)
			<-block
			return []byte("led-result"), nil
		})
		batchDone <- out{res, err}
	}()
	<-started

	execDone := make(chan error, 1)
	var execRes []byte
	go func() {
		var err error
		execRes, _, err = env.runtime.Execute(id, input, func([]byte) ([]byte, error) {
			t.Error("Execute recomputed a batch leader's input")
			return nil, errors.New("unexpected compute")
		})
		execDone <- err
	}()
	waitFor(t, "Execute to join the batch flight", func() bool {
		env.runtime.flightMu.Lock()
		f, ok := env.runtime.inflight[mle.ComputeTag(id, input)]
		env.runtime.flightMu.Unlock()
		return ok && f != nil
	})
	close(block)
	b := <-batchDone
	if b.err != nil {
		t.Fatalf("ExecuteBatch: %v", b.err)
	}
	if err := <-execDone; err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if string(execRes) != "led-result" {
		t.Errorf("Execute result = %q, want the batch leader's result", execRes)
	}
	if b.res[0].Outcome != OutcomeComputed {
		t.Errorf("leader outcome = %v, want computed", b.res[0].Outcome)
	}
}

func TestExecuteBatchAfterClose(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	if err := env.runtime.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := env.runtime.ExecuteBatch(id, batchInputs(2), echoCompute(nil)); err == nil {
		t.Error("ExecuteBatch on a closed runtime succeeded")
	}
}
