package chunk

import (
	"math/rand"
	"testing"
)

// BenchmarkHotChunker measures the chunker's cut-point search over
// pseudo-random data — the per-byte loop every chunked PUT and every
// streaming emit pays. AppendSplit into a reused slice is the
// allocation-free steady state; the regression gate (bench/baseline.txt
// via make bench-regress) holds allocs/op at zero and watches ns/op.
func BenchmarkHotChunker(b *testing.B) {
	c, err := NewChunker(Config{})
	if err != nil {
		b.Fatalf("NewChunker: %v", err)
	}
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	dst := make([][]byte, 0, len(data)/DefaultAvg+1)

	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.AppendSplit(dst[:0], data)
	}
	if len(dst) == 0 {
		b.Fatal("no chunks")
	}
}
