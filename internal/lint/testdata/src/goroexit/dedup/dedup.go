// Package dedup exercises the goroexit analyzer: goroutines in the
// service packages must have a reachable shutdown edge.
package dedup

type Engine struct {
	stop chan struct{}
	work chan int
}

func process(int) {}

// spinForever launches an unconditional loop: leaks past Close.
func (e *Engine) spinForever() {
	go func() { // want `goroutine body has no reachable shutdown edge`
		for {
			process(<-e.work)
		}
	}()
}

// loopWithStop has a stop-channel case that returns: clean.
func (e *Engine) loopWithStop() {
	go func() {
		for {
			select {
			case <-e.stop:
				return
			case v := <-e.work:
				process(v)
			}
		}
	}()
}

// drain ranges the work channel: closing it is the shutdown edge.
func (e *Engine) drain() {
	go func() {
		for v := range e.work {
			process(v)
		}
	}()
}

// loop is a named never-returning worker.
func (e *Engine) loop() {
	for {
		process(<-e.work)
	}
}

// startLoop launches it: flagged at the go statement via the call
// graph's never-returns summary.
func (e *Engine) startLoop() {
	go e.loop() // want `goroutine runs loop, which has no reachable return`
}

// oneShot runs to completion on its own: clean.
func (e *Engine) oneShot(v int) {
	go func() {
		process(v)
	}()
}
