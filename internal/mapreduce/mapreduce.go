// Package mapreduce is a generic in-process MapReduce engine standing
// in for the C++ mapreduce library of Case 4 in the paper's
// evaluation. It provides parallel mappers with optional per-worker
// combiners, a hash shuffle, and parallel reducers, all type-safe via
// generics. The bag-of-words (BoW) job of the paper is built on top in
// bow.go.
package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Mapper transforms one input record into key/value pairs via emit.
type Mapper[In any, K comparable, V any] func(in In, emit func(K, V)) error

// Reducer folds all values of one key into a single output value.
type Reducer[K comparable, V, Out any] func(key K, values []V) (Out, error)

// Combiner optionally pre-folds values per worker before the shuffle,
// cutting shuffle volume (classic word-count optimisation).
type Combiner[V any] func(a, b V) V

// Config tunes a job.
type Config[V any] struct {
	// Workers is the mapper/reducer parallelism; 0 means GOMAXPROCS.
	Workers int
	// Combine, when non-nil, folds values per key within each map
	// worker before the shuffle.
	Combine Combiner[V]
}

// Run executes a MapReduce job over inputs and returns the per-key
// outputs. The result map is deterministic in content (iteration order
// is Go's usual map order); callers needing canonical bytes should
// sort keys.
func Run[In any, K comparable, V, Out any](
	inputs []In,
	mapper Mapper[In, K, V],
	reducer Reducer[K, V, Out],
	cfg Config[V],
) (map[K]Out, error) {
	if mapper == nil || reducer == nil {
		return nil, errors.New("mapreduce: mapper and reducer are required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) && len(inputs) > 0 {
		workers = len(inputs)
	}
	if len(inputs) == 0 {
		return make(map[K]Out), nil
	}

	// Map phase: each worker processes a strided share of the inputs
	// into a private intermediate map (with combining when enabled).
	type interm = map[K][]V
	partials := make([]interm, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(interm)
			emit := func(k K, v V) {
				if cfg.Combine != nil {
					if prev, ok := local[k]; ok {
						local[k][len(prev)-1] = cfg.Combine(prev[len(prev)-1], v)
						return
					}
				}
				local[k] = append(local[k], v)
			}
			for i := w; i < len(inputs); i += workers {
				if err := mapper(inputs[i], emit); err != nil {
					errs[w] = fmt.Errorf("mapreduce: map input %d: %w", i, err)
					return
				}
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Shuffle: merge worker maps.
	merged := make(interm)
	for _, local := range partials {
		for k, vs := range local {
			merged[k] = append(merged[k], vs...)
		}
	}

	// Reduce phase: partition keys across workers.
	keys := make([]K, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	out := make(map[K]Out, len(keys))
	var outMu sync.Mutex
	rerrs := make([]error, workers)
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += workers {
				k := keys[i]
				v, err := reducer(k, merged[k])
				if err != nil {
					rerrs[w] = fmt.Errorf("mapreduce: reduce: %w", err)
					return
				}
				outMu.Lock()
				out[k] = v
				outMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range rerrs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
