package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow layer under the dataflow analyzers
// (sealflow, fsyncorder, goroexit): a per-function CFG of basic blocks
// built from the AST, with dominators and reachability on top. It
// stays deliberately simple — statement-level blocks, no SSA, no
// critical-edge splitting — because the analyzers built on it reason
// about event ordering ("a Sync dominates this Rename", "an exit is
// reachable from this loop"), not about values at the instruction
// level; value tracking lives in dataflow.go.
//
// Coverage notes:
//
//   - Branching statements (if/for/range/switch/type-switch/select)
//     produce the expected diamond/loop shapes; the controlling
//     expression is recorded as a node of the head block so expression
//     -level analyses see it in order.
//   - break/continue/goto honour labels. fallthrough links a case
//     block to the next case body.
//   - A return edge goes to the synthetic exit block. Statements
//     following a terminator land in an unreachable block, which the
//     builder keeps: unreachable code is the author's problem, not a
//     crash.
//   - panic(...) and calls that never return (os.Exit, log.Fatal*,
//     runtime.Goexit, t.Fatal*) terminate the block WITHOUT an edge to
//     exit: the function does not return normally through them. This
//     matters for fsyncorder's "on all non-error returns" rules and
//     keeps goroexit honest (a goroutine whose only way out is panic
//     has no shutdown edge).
//   - defer bodies are not spliced into the exit path; deferred calls
//     are visible as ordinary nodes where the defer statement occurs.
//     Analyzers that care (keyzero) already handle defer lexically.

// cfgBlock is one basic block: a maximal straight-line sequence of
// statement/expression nodes with a single entry and explicit
// successor edges.
type cfgBlock struct {
	index int
	// nodes are the block's statements (and controlling expressions)
	// in execution order.
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit is the synthetic single exit: every return statement and
	// the fall-off-the-end path feed it.
	exit *cfgBlock
	// returns lists every return statement together with its block.
	returns []cfgReturn

	// dom[i] is the bitset of blocks dominating block i (computed
	// lazily by dominators()).
	dom []bitset
}

// cfgReturn is one return site.
type cfgReturn struct {
	stmt  *ast.ReturnStmt
	block *cfgBlock
}

// bitset is a fixed-width bit vector over block indexes.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// intersect ands o into b, reporting whether b changed.
func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		if n := b[i] & o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// buildCFG constructs the CFG of a function or closure body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = &cfgBlock{index: -1} // patched into blocks last
	b.cur = g.entry
	b.stmtList(body.List)
	// Fall off the end: an implicit return.
	b.link(b.cur, g.exit)
	b.resolveGotos()
	g.exit.index = len(g.blocks)
	g.blocks = append(g.blocks, g.exit)
	return g
}

// loopFrame tracks the jump targets a loop (or switch/select) exposes
// to break/continue, with the statement's label when present.
type loopFrame struct {
	label     string
	breakTo   *cfgBlock
	contTo    *cfgBlock // nil for switch/select frames
	isLoop    bool
	fallthru  *cfgBlock // next case body, for fallthrough
	selective bool      // switch/select frame
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock
	frames []loopFrame
	labels map[string]*cfgBlock
	gotos  []pendingGoto
	// nextLabel holds a label immediately preceding a for/switch so
	// the frame can register it for labeled break/continue.
	nextLabel string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// terminate ends the current block with no successors and starts a
// fresh (unreachable until linked) block.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Cond)
		head := b.cur
		then := b.newBlock()
		b.link(head, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *cfgBlock
		if s.Else != nil {
			els := b.newBlock()
			b.link(head, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		b.link(thenEnd, join)
		if elseEnd != nil {
			b.link(elseEnd, join)
		} else {
			b.link(head, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, exit)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.link(post, head)
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, contTo: post, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.nodes = append(head.nodes, s)
		b.link(b.cur, head)
		body := b.newBlock()
		exit := b.newBlock()
		b.link(head, body)
		// Ranging over a channel only stops when the channel closes (or
		// via break/return); over anything else the collection is
		// finite. Either way the loop has a structural exit edge; the
		// goroexit analyzer separately checks channel ranges.
		b.link(head, exit)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, contTo: head, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, s.Tag)
		}
		b.switchClauses(label, s.Body, nil)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Assign)
		b.switchClauses(label, s.Body, nil)
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.switchClauses(label, s.Body, s)
	case *ast.LabeledStmt:
		// A label on a loop/switch registers with the frame; a label on
		// anything else is a goto target at a fresh block.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.nextLabel = s.Label.Name
			b.registerLabelBlock(s.Label.Name, nil)
			b.stmt(s.Stmt)
		default:
			target := b.newBlock()
			b.link(b.cur, target)
			b.cur = target
			b.registerLabelBlock(s.Label.Name, target)
			b.stmt(s.Stmt)
		}
	case *ast.BranchStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.link(b.cur, f.breakTo)
			}
			b.terminate()
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.link(b.cur, f.contTo)
			}
			b.terminate()
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.terminate()
		case token.FALLTHROUGH:
			if len(b.frames) > 0 {
				f := b.frames[len(b.frames)-1]
				if f.fallthru != nil {
					b.link(b.cur, f.fallthru)
				}
			}
			b.terminate()
		}
	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.g.returns = append(b.g.returns, cfgReturn{stmt: s, block: b.cur})
		b.link(b.cur, b.g.exit)
		b.terminate()
	default:
		b.cur.nodes = append(b.cur.nodes, s)
		if isNoReturnStmt(s) {
			b.terminate()
		}
	}
}

// switchClauses builds the shared clause shape of switch, type switch
// and select. sel is non-nil for a select statement.
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt, sel *ast.SelectStmt) {
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: join, selective: true})
	frameIdx := len(b.frames) - 1

	// First pass: create a block per clause so fallthrough can link
	// forward.
	type clausePlan struct {
		blk   *cfgBlock
		stmts []ast.Stmt
		node  ast.Node // the clause, recorded for comm/case expr order
	}
	var plans []clausePlan
	hasDefault := false
	for _, cs := range body.List {
		switch c := cs.(type) {
		case *ast.CaseClause:
			blk := b.newBlock()
			if c.List == nil {
				hasDefault = true
			}
			plans = append(plans, clausePlan{blk: blk, stmts: c.Body, node: c})
		case *ast.CommClause:
			blk := b.newBlock()
			if c.Comm == nil {
				hasDefault = true
			}
			plans = append(plans, clausePlan{blk: blk, stmts: c.Body, node: c})
		}
	}
	for i, p := range plans {
		b.link(head, p.blk)
		if i+1 < len(plans) {
			b.frames[frameIdx].fallthru = plans[i+1].blk
		} else {
			b.frames[frameIdx].fallthru = nil
		}
		b.cur = p.blk
		switch c := p.node.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.cur.nodes = append(b.cur.nodes, e)
			}
		case *ast.CommClause:
			if c.Comm != nil {
				b.stmt(c.Comm)
			}
		}
		b.stmtList(p.stmts)
		b.link(b.cur, join)
	}
	// A switch without a default may skip every clause: head flows to
	// join directly. A select always executes some clause (it blocks
	// until one is ready), so head reaches join only through a clause —
	// and select{} with no clauses blocks forever, leaving join
	// unreachable.
	if sel == nil && !hasDefault {
		b.link(head, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// takeLabel consumes the pending label set by a LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) registerLabelBlock(name string, blk *cfgBlock) {
	if b.labels == nil {
		b.labels = make(map[string]*cfgBlock)
	}
	if blk != nil {
		b.labels[name] = blk
	}
}

// findFrame locates the break/continue target frame for an optional
// label.
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// resolveGotos links pending goto edges to their label blocks. A label
// that was registered on a loop (frame label) rather than a plain
// statement resolves through labels too when present; unresolvable
// gotos (label on a loop head) conservatively link to no target.
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok && target != nil {
			b.link(g.from, target)
		}
	}
}

// noReturnCallNames are callee base names that never return control.
var noReturnCallNames = map[string]bool{
	"panic": true, "Goexit": true, "Exit": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
}

// isNoReturnStmt reports whether s is a call that terminates control
// flow (panic, os.Exit, log.Fatal*, t.Fatal*, runtime.Goexit).
func isNoReturnStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	_, name := calleeParts(call)
	return noReturnCallNames[name]
}

// dominators computes the dominator sets with the classic iterative
// bitset algorithm. Unreachable blocks end up dominated by everything
// (the all-ones convention), which downstream queries treat as "not
// reachable, claim holds vacuously".
func (g *funcCFG) dominators() {
	if g.dom != nil {
		return
	}
	n := len(g.blocks)
	g.dom = make([]bitset, n)
	for i := range g.dom {
		g.dom[i] = newBitset(n)
		if i == g.entry.index {
			g.dom[i].set(i)
		} else {
			g.dom[i].fill()
		}
	}
	changed := true
	tmp := newBitset(n)
	for changed {
		changed = false
		for _, blk := range g.blocks {
			if blk == g.entry {
				continue
			}
			if len(blk.preds) == 0 {
				continue // unreachable: stays all-ones
			}
			tmp.fill()
			for _, p := range blk.preds {
				tmp.intersect(g.dom[p.index])
			}
			tmp.set(blk.index)
			// Dominator sets only shrink across iterations, so the old
			// set is always a superset of the recomputed one and
			// intersecting is equivalent to assigning.
			if g.dom[blk.index].intersect(tmp) {
				changed = true
			}
		}
	}
}

// dominates reports whether block a dominates block b (every path from
// entry to b passes through a). An unreachable b is dominated by
// everything.
func (g *funcCFG) dominates(a, b *cfgBlock) bool {
	g.dominators()
	return g.dom[b.index].has(a.index)
}

// reachableFrom returns the set of blocks reachable from start
// (inclusive).
func (g *funcCFG) reachableFrom(start *cfgBlock) bitset {
	seen := newBitset(len(g.blocks))
	stack := []*cfgBlock{start}
	seen.set(start.index)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.succs {
			if !seen.has(s.index) {
				seen.set(s.index)
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// nodeIndex returns the position of node n within block blk's node
// list, or -1.
func (blk *cfgBlock) nodeIndex(n ast.Node) int {
	for i, x := range blk.nodes {
		if x == n {
			return i
		}
	}
	return -1
}
