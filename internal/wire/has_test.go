package wire

import (
	"encoding/binary"
	"errors"
	"testing"

	"speed/internal/mle"
)

func TestHasBatchMessageRoundTrips(t *testing.T) {
	msgs := []Message{
		HasBatchRequest{Tags: []mle.Tag{mustTag(0x01), mustTag(0x02), mustTag(0x03)}},
		HasBatchResponse{Present: []bool{true, false, true}},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", m.Kind(), err)
		}
		switch want := m.(type) {
		case HasBatchRequest:
			gm := got.(HasBatchRequest)
			if len(gm.Tags) != len(want.Tags) {
				t.Fatalf("tag count = %d, want %d", len(gm.Tags), len(want.Tags))
			}
			for i := range gm.Tags {
				if gm.Tags[i] != want.Tags[i] {
					t.Fatalf("tag %d differs", i)
				}
			}
		case HasBatchResponse:
			gm := got.(HasBatchResponse)
			if len(gm.Present) != len(want.Present) {
				t.Fatalf("present count = %d, want %d", len(gm.Present), len(want.Present))
			}
			for i := range gm.Present {
				if gm.Present[i] != want.Present[i] {
					t.Fatalf("present %d differs", i)
				}
			}
		}
	}

	// Empty messages round-trip to empty.
	for _, m := range []Message{HasBatchRequest{}, HasBatchResponse{}} {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", m.Kind(), err)
		}
		switch gm := got.(type) {
		case HasBatchRequest:
			if len(gm.Tags) != 0 {
				t.Fatalf("empty request decoded %d tags", len(gm.Tags))
			}
		case HasBatchResponse:
			if len(gm.Present) != 0 {
				t.Fatalf("empty response decoded %d flags", len(gm.Present))
			}
		}
	}
}

func TestHasBatchUnmarshalRejectsMalformed(t *testing.T) {
	overCount := binary.BigEndian.AppendUint32([]byte{byte(KindHasBatchRequest)}, MaxBatchItems+1)
	tests := []struct {
		name string
		b    []byte
	}{
		{"request missing count", []byte{byte(KindHasBatchRequest), 0, 0}},
		{"request count over limit", overCount},
		{"request short tags", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindHasBatchRequest)}, 2),
			make([]byte, mle.TagSize)...)},
		{"request trailing bytes", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindHasBatchRequest)}, 1),
			make([]byte, mle.TagSize+1)...)},
		{"response missing count", []byte{byte(KindHasBatchResponse), 0}},
		{"response truncated", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindHasBatchResponse)}, 2),
			1)},
		{"response bad bool", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindHasBatchResponse)}, 1),
			7)},
		{"response trailing bytes", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindHasBatchResponse)}, 1),
			1, 0xFF)},
	}
	for _, tt := range tests {
		if _, err := Unmarshal(tt.b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: Unmarshal = %v, want ErrMalformed", tt.name, err)
		}
	}
}

// TestFeatureChunkingNegotiation pins the chunking capability to the
// same intersection rule as every other feature bit: both sides must
// offer it, and a v1 channel strips it entirely.
func TestFeatureChunkingNegotiation(t *testing.T) {
	mkPeer := func(features byte) [64]byte {
		var d [64]byte
		d[32] = byte(ProtocolV2)
		d[33] = features
		return d
	}
	if got := negotiateFeatures(DefaultFeatures, mkPeer(byte(DefaultFeatures)), ProtocolV2); got&FeatureChunking == 0 {
		t.Errorf("both offer chunking: got %#x, want FeatureChunking set", got)
	}
	if got := negotiateFeatures(DefaultFeatures, mkPeer(byte(FeatureTrace)), ProtocolV2); got&FeatureChunking != 0 {
		t.Errorf("peer without chunking: got %#x, want FeatureChunking clear", got)
	}
	if got := negotiateFeatures(FeatureTrace, mkPeer(byte(DefaultFeatures)), ProtocolV2); got&FeatureChunking != 0 {
		t.Errorf("we don't offer chunking: got %#x, want FeatureChunking clear", got)
	}
	if got := negotiateFeatures(DefaultFeatures, mkPeer(byte(DefaultFeatures)), ProtocolV1); got != 0 {
		t.Errorf("v1 channel: got %#x, want no features", got)
	}
}
