package compress_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"speed/internal/compress"
)

// ExampleCompress shows the one-shot API.
func ExampleCompress() {
	src := []byte(strings.Repeat("deduplicate all the things. ", 100))
	comp := compress.Compress(src)
	out, err := compress.Decompress(comp)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(bytes.Equal(out, src), len(comp) < len(src))
	// Output:
	// true true
}

// ExampleNewWriter shows the streaming API over an in-memory pipe.
func ExampleNewWriter() {
	var stream bytes.Buffer
	w := compress.NewWriter(&stream)
	if _, err := io.Copy(w, strings.NewReader(strings.Repeat("streaming data ", 1000))); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := w.Close(); err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := io.ReadAll(compress.NewReader(&stream))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(out))
	// Output:
	// 15000
}

// ExampleCompressLevel compares effort levels.
func ExampleCompressLevel() {
	src := []byte(strings.Repeat("level up! ", 2000))
	fast := compress.CompressLevel(src, 1)
	best := compress.CompressLevel(src, 9)
	fmt.Println(len(best) <= len(fast))
	// Output:
	// true
}
