package enclave

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestQuoteVerify(t *testing.T) {
	p := NewPlatform(Config{})
	e, err := p.Create("app", []byte("code"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	q, err := e.Quote([]byte("channel key"))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if err := VerifyQuote(q, [][]byte{p.AttestationPublicKey()}); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	if q.Measurement != e.Measurement() {
		t.Error("quote carries wrong measurement")
	}
	if !bytes.HasPrefix(q.Data[:], []byte("channel key")) {
		t.Error("quote data not embedded")
	}
}

func TestQuoteRejectsUntrustedPlatform(t *testing.T) {
	p1 := NewPlatform(Config{})
	p2 := NewPlatform(Config{})
	e, _ := p1.Create("app", []byte("code"))
	q, err := e.Quote(nil)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	for name, keys := range map[string][][]byte{
		"empty trust set": nil,
		"other platform":  {p2.AttestationPublicKey()},
	} {
		if err := VerifyQuote(q, keys); !errors.Is(err, ErrQuoteVerification) {
			t.Errorf("%s: VerifyQuote = %v, want ErrQuoteVerification", name, err)
		}
	}
}

func TestQuoteRejectsForgedKey(t *testing.T) {
	p := NewPlatform(Config{})
	e, _ := p.Create("app", []byte("code"))
	q, err := e.Quote(nil)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	// Trust a garbage key and claim the quote came from it.
	garbage := []byte("not a PKIX key")
	q.PlatformKey = garbage
	if err := VerifyQuote(q, [][]byte{garbage}); !errors.Is(err, ErrQuoteVerification) {
		t.Errorf("VerifyQuote with garbage key = %v, want ErrQuoteVerification", err)
	}
}

func TestQuoteMarshalMalformed(t *testing.T) {
	p := NewPlatform(Config{})
	e, _ := p.Create("app", []byte("code"))
	q, err := e.Quote([]byte("d"))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	full := q.Marshal()
	for _, cut := range []int{0, 10, 95, len(full) - 1} {
		if _, err := UnmarshalQuote(full[:cut]); err == nil {
			t.Errorf("UnmarshalQuote accepted truncation at %d", cut)
		}
	}
	if _, err := UnmarshalQuote(append(full, 1)); err == nil {
		t.Error("UnmarshalQuote accepted trailing bytes")
	}
}

func TestDeterministicKeyStable(t *testing.T) {
	k1 := deterministicP256Key(newSeededReader([]byte("seed")))
	k2 := deterministicP256Key(newSeededReader([]byte("seed")))
	if k1.D.Cmp(k2.D) != 0 {
		t.Error("same seed produced different keys")
	}
	k3 := deterministicP256Key(newSeededReader([]byte("other")))
	if k1.D.Cmp(k3.D) == 0 {
		t.Error("different seeds produced identical keys")
	}
	// The derived point must be on the curve.
	if !k1.Curve.IsOnCurve(k1.X, k1.Y) {
		t.Error("derived public point off curve")
	}
}

func TestSeededReader(t *testing.T) {
	r1 := newSeededReader([]byte("s"))
	r2 := newSeededReader([]byte("s"))
	a := make([]byte, 100)
	b := make([]byte, 100)
	if _, err := io.ReadFull(r1, a); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	// Read in odd-sized chunks: the stream must be identical
	// regardless of read partitioning.
	for off := 0; off < 100; {
		n := 7
		if off+n > 100 {
			n = 100 - off
		}
		if _, err := io.ReadFull(r2, b[off:off+n]); err != nil {
			t.Fatalf("ReadFull: %v", err)
		}
		off += n
	}
	if !bytes.Equal(a, b) {
		t.Error("seeded stream depends on read partitioning")
	}
	// Not trivially constant.
	if bytes.Equal(a[:32], a[32:64]) {
		t.Error("seeded stream repeats blocks")
	}
}

func TestSeededPlatformSealingStable(t *testing.T) {
	mk := func() *Enclave {
		p := NewPlatform(Config{PlatformSeed: []byte("machine")})
		e, err := p.Create("app", []byte("code"))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		return e
	}
	e1, e2 := mk(), mk()
	sealed, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := e2.Unseal(sealed)
	if err != nil {
		t.Fatalf("Unseal across instances: %v", err)
	}
	if string(got) != "secret" {
		t.Errorf("Unseal = %q", got)
	}
	// And the attestation keys match.
	if !bytes.Equal(e1.platform.AttestationPublicKey(), e2.platform.AttestationPublicKey()) {
		t.Error("seeded attestation keys differ")
	}
}
