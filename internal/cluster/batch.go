package cluster

import (
	"fmt"
	"sync"

	"speed/internal/mle"
	"speed/internal/wire"
)

// pickRead returns the first member in the tag's read order that has
// not already failed for this request.
func (c *Client) pickRead(tag mle.Tag, excluded map[int]bool) (int, bool) {
	for _, ni := range c.readOrder(tag) {
		if !excluded[ni] {
			return ni, true
		}
	}
	return 0, false
}

// pickWrite returns the next member a failover write should target:
// the first live, not-yet-failed member in ring order, or any
// not-yet-failed member when everything is down.
func (c *Client) pickWrite(tag mle.Tag, excluded map[int]bool) (int, bool) {
	all := c.ring.owners(tag, len(c.nodes))
	for _, ni := range all {
		if !excluded[ni] && c.nodes[ni].up.Load() {
			return ni, true
		}
	}
	for _, ni := range all {
		if !excluded[ni] {
			return ni, true
		}
	}
	return 0, false
}

// groupResult carries one member's answer for its slice of a batch.
type groupResult struct {
	ni   int
	idxs []int
	gets []wire.GetResult
	puts []wire.PutResult
	err  error
}

// GetBatch implements dedup.BatchClient: tags are grouped by their
// preferred member and fetched in parallel per-node round trips, merged
// back positionally. A member failure re-routes only that member's tags
// to the next replica in further rounds; results found away from their
// primary are read-repaired in the background. The call errors only
// when some tag runs out of reachable members.
func (c *Client) GetBatch(tags []mle.Tag) ([]wire.GetResult, error) {
	return c.GetBatchTraced(wire.TraceContext{}, tags)
}

// GetBatchTraced is GetBatch carrying a trace context: each per-member
// round trip becomes a route_batch_get leg span of the sampled call.
func (c *Client) GetBatchTraced(tc wire.TraceContext, tags []mle.Tag) ([]wire.GetResult, error) {
	if c.closed.Load() {
		return nil, errClientClosed
	}
	if len(tags) == 0 {
		return nil, nil
	}
	results := make([]wire.GetResult, len(tags))
	primaries := make([]int, len(tags))
	for i, tag := range tags {
		primaries[i] = c.ring.owners(tag, 1)[0]
	}
	excluded := make([]map[int]bool, len(tags))
	repairs := make(map[int][]wire.PutItem)
	pending := make([]int, len(tags))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		groups := make(map[int][]int)
		for _, idx := range pending {
			ni, ok := c.pickRead(tags[idx], excluded[idx])
			if !ok {
				return nil, fmt.Errorf("cluster: batch get: no member reachable for tag %x", tags[idx][:4])
			}
			groups[ni] = append(groups[ni], idx)
		}
		var next []int
		for _, gr := range c.runGets(tc, tags, groups) {
			n := c.nodes[gr.ni]
			if gr.err != nil {
				c.noteFailure(n, gr.err)
				c.noteFailover(n, len(gr.idxs))
				for _, idx := range gr.idxs {
					if excluded[idx] == nil {
						excluded[idx] = make(map[int]bool)
					}
					excluded[idx][gr.ni] = true
				}
				next = append(next, gr.idxs...)
				continue
			}
			c.noteSuccess(n)
			n.routedGet.Add(int64(len(gr.idxs)))
			for k, idx := range gr.idxs {
				results[idx] = gr.gets[k]
				if gr.gets[k].Found && gr.ni != primaries[idx] {
					repairs[primaries[idx]] = append(repairs[primaries[idx]],
						wire.PutItem{Tag: tags[idx], Sealed: gr.gets[k].Sealed})
				}
			}
		}
		pending = next
	}
	for primary, items := range repairs {
		c.repairAsync(primary, tc, items)
	}
	return results, nil
}

// runGets issues one BatchGet per group concurrently and collects the
// answers; merging into shared state is the caller's, serially.
func (c *Client) runGets(tc wire.TraceContext, tags []mle.Tag, groups map[int][]int) []groupResult {
	out := make([]groupResult, 0, len(groups))
	for ni, idxs := range groups {
		out = append(out, groupResult{ni: ni, idxs: idxs})
	}
	var wg sync.WaitGroup
	for i := range out {
		gr := &out[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := make([]mle.Tag, len(gr.idxs))
			for k, idx := range gr.idxs {
				chunk[k] = tags[idx]
			}
			start := legClock(tc)
			fwd, leg := forwardLeg(tc)
			gr.gets, gr.err = c.nodes[gr.ni].client.GetBatchTraced(fwd, chunk)
			if gr.err == nil && len(gr.gets) != len(chunk) {
				gr.err = fmt.Errorf("cluster: member %s answered %d results for %d tags",
					c.nodes[gr.ni].addr, len(gr.gets), len(chunk))
			}
			c.recordLeg(tc, leg, "route_batch_get", c.nodes[gr.ni].addr, start,
				fmt.Sprintf("%d tags", len(chunk)), gr.err)
		}()
	}
	wg.Wait()
	return out
}

// PutBatch implements dedup.BatchClient: every item fans out to its
// write targets (Replicas live owners) in one parallel pass; an item is
// OK as soon as any replica accepted it, and items whose every target
// failed at the transport level are re-routed in failover rounds. The
// call errors only when some item runs out of reachable members.
func (c *Client) PutBatch(items []wire.PutItem) ([]wire.PutResult, error) {
	return c.PutBatchTraced(wire.TraceContext{}, items)
}

// PutBatchTraced is PutBatch carrying a trace context: each per-member
// round trip becomes a route_batch_put leg span of the sampled call.
func (c *Client) PutBatchTraced(tc wire.TraceContext, items []wire.PutItem) ([]wire.PutResult, error) {
	if c.closed.Load() {
		return nil, errClientClosed
	}
	if len(items) == 0 {
		return nil, nil
	}
	ok := make([]bool, len(items))
	responded := make([]bool, len(items))
	rejected := make([]string, len(items))
	excluded := make([]map[int]bool, len(items))

	merge := func(grs []groupResult) {
		for _, gr := range grs {
			n := c.nodes[gr.ni]
			if gr.err != nil {
				c.noteFailure(n, gr.err)
				c.noteFailover(n, len(gr.idxs))
				for _, idx := range gr.idxs {
					if excluded[idx] == nil {
						excluded[idx] = make(map[int]bool)
					}
					excluded[idx][gr.ni] = true
				}
				continue
			}
			c.noteSuccess(n)
			n.routedPut.Add(int64(len(gr.idxs)))
			for k, idx := range gr.idxs {
				responded[idx] = true
				if gr.puts[k].OK {
					ok[idx] = true
				} else if rejected[idx] == "" {
					rejected[idx] = gr.puts[k].Err
				}
			}
		}
	}

	// First pass: full replication to each item's write targets.
	groups := make(map[int][]int)
	for i, it := range items {
		for _, ni := range c.writeTargets(it.Tag) {
			groups[ni] = append(groups[ni], i)
		}
	}
	merge(c.runPuts(tc, items, groups))

	// Failover rounds: items with zero responses chase the next
	// reachable member, one target per round — availability now,
	// re-replication later via read-repair and the syncer.
	for round := 1; round < len(c.nodes); round++ {
		groups = make(map[int][]int)
		for i := range items {
			if responded[i] {
				continue
			}
			ni, found := c.pickWrite(items[i].Tag, excluded[i])
			if !found {
				return nil, fmt.Errorf("cluster: batch put: no member reachable for item %d", i)
			}
			groups[ni] = append(groups[ni], i)
		}
		if len(groups) == 0 {
			break
		}
		merge(c.runPuts(tc, items, groups))
	}

	results := make([]wire.PutResult, len(items))
	for i := range items {
		switch {
		case ok[i]:
			results[i] = wire.PutResult{OK: true}
		case responded[i]:
			results[i] = wire.PutResult{OK: false, Err: rejected[i]}
		default:
			return nil, fmt.Errorf("cluster: batch put: no replica reachable for item %d", i)
		}
	}
	return results, nil
}

// runPuts issues one BatchPut per group concurrently and collects the
// answers.
func (c *Client) runPuts(tc wire.TraceContext, items []wire.PutItem, groups map[int][]int) []groupResult {
	out := make([]groupResult, 0, len(groups))
	for ni, idxs := range groups {
		out = append(out, groupResult{ni: ni, idxs: idxs})
	}
	var wg sync.WaitGroup
	for i := range out {
		gr := &out[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := make([]wire.PutItem, len(gr.idxs))
			for k, idx := range gr.idxs {
				chunk[k] = items[idx]
			}
			start := legClock(tc)
			fwd, leg := forwardLeg(tc)
			gr.puts, gr.err = c.nodes[gr.ni].client.PutBatchTraced(fwd, chunk)
			if gr.err == nil && len(gr.puts) != len(chunk) {
				gr.err = fmt.Errorf("cluster: member %s answered %d results for %d items",
					c.nodes[gr.ni].addr, len(gr.puts), len(chunk))
			}
			c.recordLeg(tc, leg, "route_batch_put", c.nodes[gr.ni].addr, start,
				fmt.Sprintf("%d items", len(chunk)), gr.err)
		}()
	}
	wg.Wait()
	return out
}
