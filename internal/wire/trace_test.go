package wire

import (
	"net"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
)

func TestTraceEnvelopeRoundTrip(t *testing.T) {
	msg := GetRequest{Tag: mle.Tag{1, 2, 3}}
	tc := TraceContext{Parent: 0xfeedface, Sampled: true}
	copy(tc.ID[:], "0123456789abcdef")

	id, got, m, err := UnmarshalEnvelopeTrace(MarshalEnvelopeTrace(99, tc, msg))
	if err != nil {
		t.Fatalf("sampled round trip: %v", err)
	}
	if id != 99 || got != tc {
		t.Fatalf("sampled round trip: id=%d tc=%+v, want 99 %+v", id, got, tc)
	}
	if m.Kind() != KindGetRequest {
		t.Fatalf("message kind %v, want KindGetRequest", m.Kind())
	}

	id, got, m, err = UnmarshalEnvelopeTrace(MarshalEnvelopeTrace(7, TraceContext{}, msg))
	if err != nil {
		t.Fatalf("unsampled round trip: %v", err)
	}
	if id != 7 || got.Valid() {
		t.Fatalf("unsampled round trip: id=%d tc=%+v, want 7 and invalid context", id, got)
	}
	if m.Kind() != KindGetRequest {
		t.Fatalf("message kind %v, want KindGetRequest", m.Kind())
	}

	// An unsampled traced envelope is the plain v2 envelope plus exactly
	// one flags byte, so the formats cannot silently drift apart.
	plain := MarshalEnvelope(7, msg)
	traced := MarshalEnvelopeTrace(7, TraceContext{}, msg)
	if len(traced) != len(plain)+1 {
		t.Fatalf("unsampled traced envelope is %d bytes, want plain+1 = %d", len(traced), len(plain)+1)
	}
}

func TestTraceEnvelopeMalformed(t *testing.T) {
	msg := GetRequest{Tag: mle.Tag{9}}
	valid := MarshalEnvelopeTrace(1, TraceContext{ID: [16]byte{1}, Sampled: true}, msg)
	cases := map[string][]byte{
		"empty":               {},
		"short header":        valid[:tracedHeaderLen-1],
		"short trace context": valid[:tracedHeaderLen+3],
		"unknown flags": func() []byte {
			b := append([]byte(nil), MarshalEnvelopeTrace(1, TraceContext{}, msg)...)
			b[envelopeHeaderLen] = 0x80
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, _, err := UnmarshalEnvelopeTrace(b); err == nil {
			t.Errorf("%s: UnmarshalEnvelopeTrace accepted malformed input", name)
		}
	}
}

func TestNegotiateFeatures(t *testing.T) {
	mkPeer := func(features byte) [64]byte {
		var d [64]byte
		d[32] = ProtocolV2
		d[33] = features
		return d
	}
	if got := negotiateFeatures(FeatureTrace, mkPeer(byte(FeatureTrace)), ProtocolV2); got != FeatureTrace {
		t.Errorf("both offer trace: got %#x, want FeatureTrace", got)
	}
	if got := negotiateFeatures(FeatureTrace, mkPeer(0), ProtocolV2); got != 0 {
		t.Errorf("peer predates features: got %#x, want 0", got)
	}
	if got := negotiateFeatures(0, mkPeer(byte(FeatureTrace)), ProtocolV2); got != 0 {
		t.Errorf("we offer nothing: got %#x, want 0", got)
	}
	if got := negotiateFeatures(FeatureTrace, mkPeer(byte(FeatureTrace)), ProtocolV1); got != 0 {
		t.Errorf("v1 channel: got %#x, want 0 (features need envelopes)", got)
	}
	// Unknown future bits from the peer never turn on anything we did
	// not offer.
	if got := negotiateFeatures(FeatureTrace, mkPeer(0xFF), ProtocolV2); got != FeatureTrace {
		t.Errorf("future peer bits: got %#x, want FeatureTrace only", got)
	}
}

// handshakePair runs a real attested handshake with the given feature
// offers and returns both channels.
func featureHandshakePair(t *testing.T, clientFeat, serverFeat Feature, version int) (*Channel, *Channel) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	client, err := p.Create("client", []byte("client-code"))
	if err != nil {
		t.Fatal(err)
	}
	server, err := p.Create("server", []byte("server-code"))
	if err != nil {
		t.Fatal(err)
	}
	cc, sc := net.Pipe()
	type result struct {
		ch  *Channel
		err error
	}
	srv := make(chan result, 1)
	go func() {
		ch, err := ServerHandshakeOptions(sc, server, nil, nil, version, serverFeat)
		srv <- result{ch, err}
	}()
	cch, err := ClientHandshakeOptions(cc, client, server.Measurement(), nil, version, clientFeat)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	sr := <-srv
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	t.Cleanup(func() { cch.Close(); sr.ch.Close() })
	return cch, sr.ch
}

func TestHandshakeNegotiatesTraceFeature(t *testing.T) {
	cases := []struct {
		name                string
		clientFeat, srvFeat Feature
		version             int
		wantTrace           bool
	}{
		{"both offer", DefaultFeatures, DefaultFeatures, ProtocolV2, true},
		{"server predates", DefaultFeatures, 0, ProtocolV2, false},
		{"client predates", 0, DefaultFeatures, ProtocolV2, false},
		{"v1 channel", DefaultFeatures, DefaultFeatures, ProtocolV1, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cch, sch := featureHandshakePair(t, c.clientFeat, c.srvFeat, c.version)
			if cch.TraceEnabled() != c.wantTrace || sch.TraceEnabled() != c.wantTrace {
				t.Fatalf("TraceEnabled: client=%v server=%v, want both %v",
					cch.TraceEnabled(), sch.TraceEnabled(), c.wantTrace)
			}
			if c.version < ProtocolV2 {
				return
			}
			// Envelopes must round-trip in the negotiated format either
			// way.
			done := make(chan error, 1)
			go func() {
				done <- cch.SendEnvelopeTrace(42,
					TraceContext{ID: [16]byte{0xAA}, Parent: 7, Sampled: true}, GetRequest{Tag: mle.Tag{5}})
			}()
			payload, err := sch.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			id, tc, m, err := sch.ParseEnvelope(payload)
			if err != nil {
				t.Fatalf("parse envelope: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("send: %v", err)
			}
			if id != 42 || m.Kind() != KindGetRequest {
				t.Fatalf("id=%d kind=%v, want 42 KindGetRequest", id, m.Kind())
			}
			if tc.Valid() != c.wantTrace {
				t.Fatalf("trace context valid=%v, want %v (context must be dropped when the feature is off)",
					tc.Valid(), c.wantTrace)
			}
			if c.wantTrace && (tc.ID != [16]byte{0xAA} || tc.Parent != 7) {
				t.Fatalf("trace context %+v did not survive the wire", tc)
			}
		})
	}
}

// TestTracedEnvelopeUnsampledZeroAlloc pins the hard tentpole
// constraint: on a trace-enabled channel, requests that were NOT
// sampled (the overwhelming steady state) still encode, send, receive
// and split with zero heap allocations per round trip.
func TestTracedEnvelopeUnsampledZeroAlloc(t *testing.T) {
	client, server := hotChannelPair(t)
	client.features = FeatureTrace
	server.features = FeatureTrace
	var req Message = GetRequest{Tag: mle.Tag{1, 2, 3}}
	var resp Message = GetResponse{Found: true, Sealed: getHitSealed()}

	roundTrip := func() {
		if err := client.SendEnvelope(3, req); err != nil {
			t.Fatalf("send request: %v", err)
		}
		payload, err := server.Recv()
		if err != nil {
			t.Fatalf("server recv: %v", err)
		}
		id, tc, _, err := SplitEnvelopeTrace(payload)
		if err != nil {
			t.Fatalf("split request: %v", err)
		}
		if id != 3 || tc.Valid() {
			t.Fatalf("request id=%d tc=%+v, want 3 and no context", id, tc)
		}
		if err := server.SendEnvelopeTrace(3, TraceContext{}, resp); err != nil {
			t.Fatalf("send response: %v", err)
		}
		payload, err = client.Recv()
		if err != nil {
			t.Fatalf("client recv: %v", err)
		}
		if _, _, _, err := SplitEnvelopeTrace(payload); err != nil {
			t.Fatalf("split response: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		roundTrip()
	}
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Errorf("unsampled traced envelope round trip allocates %v times per op, want 0", n)
	}
}

func TestSpanIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("NewSpanID returned zero (reserved for no-parent)")
		}
		if seen[id] {
			t.Fatalf("NewSpanID repeated %#x within 1000 draws", id)
		}
		seen[id] = true
	}
	if NewTraceID() == ([16]byte{}) {
		t.Fatal("NewTraceID returned the zero ID")
	}
	if got := SpanIDHex(0x0102030405060708); got != "0102030405060708" {
		t.Fatalf("SpanIDHex = %q", got)
	}
	tc := TraceContext{ID: [16]byte{0xAB}, Sampled: true}
	if got := tc.TraceIDHex(); got != "ab000000000000000000000000000000" {
		t.Fatalf("TraceIDHex = %q", got)
	}
}

// FuzzUnmarshalEnvelopeTrace: arbitrary traced-envelope bytes must
// never panic, and valid frames must re-split identically.
func FuzzUnmarshalEnvelopeTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalEnvelopeTrace(1, TraceContext{}, GetRequest{Tag: mle.Tag{1}}))
	f.Add(MarshalEnvelopeTrace(2, TraceContext{ID: [16]byte{2}, Parent: 3, Sampled: true},
		PutRequest{Tag: mle.Tag{4}, Sealed: mle.Sealed{Blob: []byte{5}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		id, tc, m, err := UnmarshalEnvelopeTrace(data)
		if err != nil {
			return
		}
		id2, tc2, m2, err := UnmarshalEnvelopeTrace(MarshalEnvelopeTrace(id, tc, m))
		if err != nil {
			t.Fatalf("re-unmarshal of valid traced envelope failed: %v", err)
		}
		if id2 != id || tc2 != tc || m2.Kind() != m.Kind() {
			t.Fatalf("traced envelope changed across round trip: (%d,%+v,%v) -> (%d,%+v,%v)",
				id, tc, m.Kind(), id2, tc2, m2.Kind())
		}
	})
}
