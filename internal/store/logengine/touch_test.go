package logengine

import (
	"testing"

	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
)

// getHits reads a key and returns the hit count the engine reports.
func getHits(t *testing.T, e *Engine, key string) int64 {
	t.Helper()
	rec, status, err := e.Get(tagOf(key))
	if err != nil || status != storeengine.StatusHit {
		t.Fatalf("Get(%s): status %v err %v", key, status, err)
	}
	return rec.Hits
}

// TestHitCountsSurviveReopen: popularity accumulated against
// segment-resident records persists through a clean close and reopen
// (touch frames in the WAL / baked flush), not just through the hot
// cache's lifetime.
func TestHitCountsSurviveReopen(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()
	cfg := testConfig(t, p, dir)

	e := openTest(t, cfg)
	mustInsert(t, e, "popular", "v1")
	mustInsert(t, e, "cold", "v2")
	// Move both to a segment so later hits go through the touch overlay.
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustGet(t, e, "popular", "v1")
	}
	hits := getHits(t, e, "popular") // the read itself counts too
	if hits != 6 {
		t.Fatalf("hits before close = %d, want 6", hits)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := openTest(t, testConfig(t, p, dir))
	if got := getHits(t, e2, "popular"); got != hits+1 {
		t.Fatalf("hits after reopen = %d, want %d", got, hits+1)
	}
	if got := getHits(t, e2, "cold"); got != 1 {
		t.Fatalf("cold hits after reopen = %d, want 1", got)
	}
}

// TestHitCountsSurviveCheckpointAndCrash: a checkpoint makes the
// overlay durable, so a kill -9 afterwards loses only the touches that
// came later.
func TestHitCountsSurviveCheckpointAndCrash(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()

	e := openTest(t, testConfig(t, p, dir))
	mustInsert(t, e, "k", "v")
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 4; i++ {
		mustGet(t, e, "k", "v")
	}
	// Persist the overlay, then touch once more without checkpointing:
	// that last touch is the allowed loss window.
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	mustGet(t, e, "k", "v")
	e.Crash()

	e2 := openTest(t, testConfig(t, p, dir))
	if got := getHits(t, e2, "k"); got != 5 {
		t.Fatalf("hits after crash = %d, want 5 (4 checkpointed + this read)", got)
	}
}

// TestHitCountsBakedByCompaction: compaction folds the overlay into the
// rewritten records, so the counts survive even after the WAL's touch
// frames are superseded and the overlay entries dropped.
func TestHitCountsBakedByCompaction(t *testing.T) {
	p := testPlatform()
	dir := t.TempDir()

	e := openTest(t, testConfig(t, p, dir))
	mustInsert(t, e, "a", "v1")
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	mustInsert(t, e, "b", "v2")
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	for i := 0; i < 3; i++ {
		mustGet(t, e, "a", "v1")
	}
	if err := e.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if n := len(e.touched); n != 0 {
		t.Fatalf("%d overlay entries survived compaction baking", n)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := openTest(t, testConfig(t, p, dir))
	if got := getHits(t, e2, "a"); got != 4 {
		t.Fatalf("hits after compaction+reopen = %d, want 4", got)
	}
}

// TestIterateSeesOverlayPopularity: exports (ExportHot ranks by Hits)
// must see overlay-applied counts for segment-resident records without
// waiting for a flush or compaction.
func TestIterateSeesOverlayPopularity(t *testing.T) {
	p := testPlatform()
	e := openTest(t, testConfig(t, p, t.TempDir()))
	mustInsert(t, e, "hot", "v1")
	mustInsert(t, e, "cool", "v2")
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 7; i++ {
		mustGet(t, e, "hot", "v1")
	}
	hits := make(map[string]int64)
	err := e.Iterate(func(tag mle.Tag, rec storeengine.Record) bool {
		switch tag {
		case tagOf("hot"):
			hits["hot"] = rec.Hits
		case tagOf("cool"):
			hits["cool"] = rec.Hits
		}
		return true
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	if hits["hot"] != 7 || hits["cool"] != 0 {
		t.Fatalf("Iterate hits = %v, want hot=7 cool=0", hits)
	}
}
