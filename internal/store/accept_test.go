package store

import (
	"net"
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/wire"
)

// tempAcceptErr mimics a transient accept failure such as EMFILE.
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: too many open files" }
func (tempAcceptErr) Temporary() bool { return true }
func (tempAcceptErr) Timeout() bool   { return false }

// flakyListener fails the first N Accept calls with a temporary error
// before delegating to the real listener.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fails > 0 {
		l.fails--
		l.mu.Unlock()
		return nil, tempAcceptErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestServeRetriesTemporaryAcceptErrors: transient accept failures
// (e.g. fd exhaustion) must not kill the server; it backs off and
// keeps serving honest clients.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store enclave: %v", err)
	}
	st, err := New(Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	real, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	flaky := &flakyListener{Listener: real, fails: 3}
	srv := NewServer(st, flaky, WithLogf(func(string, ...any) {}))
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() {
		_ = srv.Close()
		<-serveErr
	})

	// Despite the three failed accepts, a client connecting afterwards
	// must be served.
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app enclave: %v", err)
	}
	conn, err := net.DialTimeout("tcp", real.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	ch, err := wire.ClientHandshakeVersion(conn, appEnc, storeEnc.Measurement(), nil, wire.ProtocolV1)
	if err != nil {
		t.Fatalf("handshake after temporary accept errors: %v", err)
	}
	if err := ch.SendMessage(wire.PutRequest{Tag: tagOf("t"), Sealed: sealedOf("v")}); err != nil {
		t.Fatalf("put: %v", err)
	}
	msg, err := ch.RecvMessage()
	if err != nil {
		t.Fatalf("put reply: %v", err)
	}
	if pr, ok := msg.(wire.PutResponse); !ok || !pr.OK {
		t.Fatalf("put reply = %#v", msg)
	}

	// Serve must still be running (the temporary errors were retried,
	// not returned).
	select {
	case err := <-serveErr:
		t.Fatalf("Serve returned early: %v", err)
	default:
	}
	flaky.mu.Lock()
	remaining := flaky.fails
	flaky.mu.Unlock()
	if remaining != 0 {
		t.Errorf("flaky listener still has %d pending failures; accept loop never consumed them", remaining)
	}
}
