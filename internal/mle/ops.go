package mle

import (
	"crypto/rand"
	"fmt"
	"io"
)

// This file exposes the individual cryptographic operations that Table I
// of the paper measures, so the benchmark harness can time each one in
// isolation:
//
//	Tag Gen.    ComputeTag
//	Key Gen.    KeyGen   (pick r, derive h, generate k, wrap [k])
//	Key Rec.    KeyRec   (derive h, unwrap [k])
//	Result Enc. EncryptResult
//	Result Dec. DecryptResult
//
// RCE.Encrypt/Decrypt compose these exact operations.

// KeyGen performs the "Key Gen." operation of Table I: choose a random
// challenge r, derive the secondary key h = Hash(func, m, r), generate a
// fresh result key k, and wrap it as [k] = k XOR h.
func KeyGen(id FuncID, input []byte, rnd io.Reader) (challenge, wrappedKey, key []byte, err error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	challenge = make([]byte, ChallengeSize)
	if _, err = io.ReadFull(rnd, challenge); err != nil {
		return nil, nil, nil, fmt.Errorf("mle: challenge: %w", err)
	}
	key, err = GenerateKey(rnd)
	if err != nil {
		return nil, nil, nil, err
	}
	h := secondaryKey(id, input, challenge)
	defer Zeroize(h[:])
	wrappedKey = make([]byte, KeySize)
	for i := range wrappedKey {
		wrappedKey[i] = key[i] ^ h[i]
	}
	return challenge, wrappedKey, key, nil
}

// KeyRec performs the "Key Rec." operation of Table I: derive
// h = Hash(func, m, r) and unwrap k = [k] XOR h.
func KeyRec(id FuncID, input, challenge, wrappedKey []byte) ([]byte, error) {
	if len(wrappedKey) != KeySize {
		return nil, ErrAuthFailed
	}
	h := secondaryKey(id, input, challenge)
	defer Zeroize(h[:])
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = wrappedKey[i] ^ h[i]
	}
	return key, nil
}

// EncryptResult performs the "Result Enc." operation of Table I:
// AES-128-GCM encryption of the result under k.
func EncryptResult(key, result []byte, rnd io.Reader) ([]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	return sealAESGCM(key, result, rnd)
}

// DecryptResult performs the "Result Dec." operation of Table I,
// returning ErrAuthFailed when the blob fails its authenticity check.
func DecryptResult(key, blob []byte) ([]byte, error) {
	return openAESGCM(key, blob)
}
