package wire

import (
	"fmt"

	"speed/internal/mle"
)

// HAS_BATCH messages (negotiated via FeatureChunking). A has-batch
// probes which of up to MaxBatchItems tags the store currently holds,
// without fetching payloads or counting as hits — the question a
// chunked PUT and the cluster syncer ask before transferring sealed
// chunks, so that only missing chunks cross the wire. The answer is a
// hint, not a promise: an entry can expire or be evicted between the
// probe and a later GET, and callers must treat a stale "present" as a
// miss discovered at reassembly time.

// HasBatchRequest asks which of the given tags are present.
type HasBatchRequest struct {
	Tags []mle.Tag
}

// HasBatchResponse answers a HasBatchRequest; Present[i] answers
// Tags[i].
type HasBatchResponse struct {
	Present []bool
}

// Kind implements Message.
func (HasBatchRequest) Kind() Kind { return KindHasBatchRequest }

// Kind implements Message.
func (HasBatchResponse) Kind() Kind { return KindHasBatchResponse }

func (m HasBatchRequest) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Tags))
	for _, tag := range m.Tags {
		buf = append(buf, tag[:]...)
	}
	return buf
}

func decodeHasBatchRequest(b []byte) (HasBatchRequest, error) {
	var m HasBatchRequest
	n, b, err := readCount(b, "HAS_BATCH_REQUEST")
	if err != nil {
		return m, err
	}
	if len(b) != n*mle.TagSize {
		return m, fmt.Errorf("%w: HAS_BATCH_REQUEST body %d bytes for %d tags", ErrMalformed, len(b), n)
	}
	m.Tags = make([]mle.Tag, n)
	for i := range m.Tags {
		copy(m.Tags[i][:], b[i*mle.TagSize:])
	}
	return m, nil
}

func (m HasBatchResponse) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Present))
	for _, p := range m.Present {
		buf = appendBool(buf, p)
	}
	return buf
}

func decodeHasBatchResponse(b []byte) (HasBatchResponse, error) {
	var m HasBatchResponse
	n, b, err := readCount(b, "HAS_BATCH_RESPONSE")
	if err != nil {
		return m, err
	}
	m.Present = make([]bool, n)
	for i := range m.Present {
		if m.Present[i], b, err = readBool(b); err != nil {
			return HasBatchResponse{}, err
		}
	}
	if len(b) != 0 {
		return HasBatchResponse{}, fmt.Errorf("%w: trailing bytes in HAS_BATCH_RESPONSE", ErrMalformed)
	}
	return m, nil
}
