package logengine

import (
	"encoding/binary"
	"errors"
	"time"

	"speed/internal/enclave"
	storeengine "speed/internal/store/engine"
)

// errBadRecord is returned when a sealed record payload parses wrong
// after authenticating. Since the seal's AEAD already rejected
// tampering, a bad payload means a version skew or an encoder bug —
// never silent acceptance.
var errBadRecord = errors.New("logengine: malformed record payload")

// encodeRecord serialises a record's fields into the plaintext that
// gets sealed before touching disk:
//
//	owner      [32]byte
//	hits       uint64 (big endian)
//	lastTouch  int64  (big endian, unix nanoseconds)
//	challenge  uint32 length + bytes
//	wrappedKey uint32 length + bytes
//	blob       uint32 length + bytes
//
// The challenge and wrapped key are key material: they exist in
// plaintext only inside enclave memory, and only the sealed form of
// this encoding is ever written out.
func encodeRecord(rec storeengine.Record) []byte {
	n := 32 + 8 + 8 + 4 + len(rec.Challenge) + 4 + len(rec.WrappedKey) + 4 + len(rec.Blob)
	out := make([]byte, 0, n)
	out = append(out, rec.Owner[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(rec.Hits))
	out = binary.BigEndian.AppendUint64(out, uint64(rec.LastTouch.UnixNano()))
	for _, field := range [][]byte{rec.Challenge, rec.WrappedKey, rec.Blob} {
		out = binary.BigEndian.AppendUint32(out, uint32(len(field)))
		out = append(out, field...)
	}
	return out
}

// decodeRecord parses encodeRecord's output. The returned slices alias
// raw; callers that retain them must copy (raw is freshly allocated by
// Unseal in practice, so engine accessors hand them out directly).
func decodeRecord(raw []byte) (storeengine.Record, error) {
	var rec storeengine.Record
	if len(raw) < 32+8+8 {
		return rec, errBadRecord
	}
	copy(rec.Owner[:], raw[:32])
	raw = raw[32:]
	rec.Hits = int64(binary.BigEndian.Uint64(raw))
	raw = raw[8:]
	rec.LastTouch = time.Unix(0, int64(binary.BigEndian.Uint64(raw)))
	raw = raw[8:]
	fields := make([][]byte, 3)
	for i := range fields {
		if len(raw) < 4 {
			return rec, errBadRecord
		}
		l := binary.BigEndian.Uint32(raw)
		raw = raw[4:]
		if uint64(l) > uint64(len(raw)) {
			return rec, errBadRecord
		}
		fields[i] = raw[:l:l]
		raw = raw[l:]
	}
	if len(raw) != 0 {
		return rec, errBadRecord
	}
	rec.Challenge, rec.WrappedKey, rec.Blob = fields[0], fields[1], fields[2]
	rec.BlobSize = int64(len(rec.Blob))
	return rec, nil
}

// sealRecord seals a record's encoding to the store enclave identity.
func sealRecord(enc *enclave.Enclave, rec storeengine.Record) ([]byte, error) {
	return enc.Seal(encodeRecord(rec))
}

// unsealRecord authenticates and parses a sealed record read back from
// untrusted storage.
func unsealRecord(enc *enclave.Enclave, sealed []byte) (storeengine.Record, error) {
	raw, err := enc.Unseal(sealed)
	if err != nil {
		return storeengine.Record{}, err
	}
	return decodeRecord(raw)
}
