package dedup

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// StoreClient is the runtime's view of the encrypted ResultStore. Both
// deployments of Section IV-B are supported: a store on the same
// machine (LocalClient) and a store on a dedicated server reached over
// the attested secure channel (RemoteClient).
type StoreClient interface {
	// Get performs a GET_REQUEST for the tag.
	Get(tag mle.Tag) (mle.Sealed, bool, error)
	// Put performs a PUT_REQUEST for the tag. With replace true, any
	// existing entry is overwritten (used after the stored entry
	// failed verification at this application).
	Put(tag mle.Tag, sealed mle.Sealed, replace bool) error
	// Close releases the client's resources.
	Close() error
}

// ErrPutRejected is returned when the store refuses a PUT, e.g. due to
// the quota mechanism.
var ErrPutRejected = errors.New("dedup: store rejected put")

// LocalClient talks to a Store in the same process, modelling the
// paper's default deployment of the ResultStore "at the same machine of
// the outsourced applications". Requests still pass through the store
// enclave's ECALLs, so transition costs are accounted identically to
// the networked path minus the socket.
type LocalClient struct {
	store *store.Store
	owner enclave.Measurement
}

var _ StoreClient = (*LocalClient)(nil)

// NewLocalClient creates a client operating on behalf of the
// application with the given measurement.
func NewLocalClient(st *store.Store, owner enclave.Measurement) *LocalClient {
	return &LocalClient{store: st, owner: owner}
}

// Get implements StoreClient. Authorization denials present as misses,
// matching the over-the-wire behaviour (deny without information).
func (c *LocalClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	sealed, found, err := c.store.GetAs(c.owner, tag)
	if errors.Is(err, store.ErrUnauthorized) {
		return mle.Sealed{}, false, nil
	}
	return sealed, found, err
}

// Put implements StoreClient.
func (c *LocalClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	put := c.store.Put
	if replace {
		put = c.store.PutReplace
	}
	_, err := put(c.owner, tag, sealed)
	if errors.Is(err, store.ErrQuota) || errors.Is(err, store.ErrUnauthorized) {
		return fmt.Errorf("%w: %v", ErrPutRejected, err)
	}
	return err
}

// Close implements StoreClient; the local client does not own the
// store, so it is a no-op.
func (c *LocalClient) Close() error { return nil }

// RemoteConfig tunes the robustness behaviour of a RemoteClient. The
// zero value selects the defaults noted on each field.
type RemoteConfig struct {
	// DialTimeout bounds the TCP connect plus the attested handshake of
	// each (re)connection attempt. Defaults to 5s; negative disables.
	DialTimeout time.Duration
	// RequestTimeout bounds one GET/PUT round trip on the channel, so a
	// stalled store can never wedge a caller. Defaults to 5s; negative
	// disables.
	RequestTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transient
	// failure (connection reset, timeout, rate-limit rejection) before
	// the error is surfaced. Defaults to 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry delay; each further retry doubles
	// it, with ±50% jitter, up to RetryMaxBackoff. Defaults to
	// 50ms / 2s.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// Trust optionally accepts a store on a remote machine whose
	// platform attestation key is listed (remote attestation).
	Trust *wire.Trust
	// Lazy defers the first connection to the first request, so a
	// client can be created while the store is still down. Combined
	// with the runtime's degradation mode the application starts
	// compute-only and picks up deduplication when the store appears.
	Lazy bool
	// Telemetry, when non-nil, registers the client's retry and
	// reconnect counters so the registry sees them directly rather
	// than through the runtime's Stats probe.
	Telemetry *telemetry.Registry
}

func (cfg *RemoteConfig) fillDefaults() {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryMaxBackoff <= 0 {
		cfg.RetryMaxBackoff = 2 * time.Second
	}
}

// RemoteClient talks to a store server over an attested secure channel.
// The paper's prototype uses synchronous communication (Section IV-B),
// so each request holds the channel until its response arrives.
// Requests carry per-request deadlines and transient failures are
// retried with jittered exponential backoff, transparently re-dialing
// and re-handshaking the attested channel when the previous one broke.
type RemoteClient struct {
	cfg RemoteConfig

	// Redial parameters; canRedial is false for clients wrapped around
	// an externally established channel.
	addr      string
	app       *enclave.Enclave
	storeMeas enclave.Measurement
	canRedial bool

	retries    atomic.Int64
	reconnects atomic.Int64

	// Telemetry mirrors of the two counters above; nil-safe no-ops
	// when RemoteConfig.Telemetry was nil.
	retriesC    *telemetry.Counter
	reconnectsC *telemetry.Counter

	mu     sync.Mutex
	ch     *wire.Channel // nil while disconnected
	closed bool
}

var _ StoreClient = (*RemoteClient)(nil)

// Dial connects to a store server at addr on the same platform,
// performing the attested handshake from the application enclave app
// and requiring the server to prove the expected store measurement.
func Dial(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement) (*RemoteClient, error) {
	return DialConfig(addr, app, storeMeasurement, RemoteConfig{})
}

// DialTrust is Dial that additionally accepts a store on a remote
// machine whose platform attestation key is in trust (remote
// attestation) — the cross-machine "master ResultStore" deployment of
// Section IV-B.
func DialTrust(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement, trust *wire.Trust) (*RemoteClient, error) {
	return DialConfig(addr, app, storeMeasurement, RemoteConfig{Trust: trust})
}

// DialConfig is Dial with explicit robustness configuration.
func DialConfig(addr string, app *enclave.Enclave, storeMeasurement enclave.Measurement, cfg RemoteConfig) (*RemoteClient, error) {
	cfg.fillDefaults()
	c := &RemoteClient{
		cfg:       cfg,
		addr:      addr,
		app:       app,
		storeMeas: storeMeasurement,
		canRedial: true,
	}
	if cfg.Telemetry != nil {
		appLabel := telemetry.L("app", app.Name())
		c.retriesC = cfg.Telemetry.NewCounter("speed_client_retries_total",
			"store request retries after transient failures", appLabel)
		c.reconnectsC = cfg.Telemetry.NewCounter("speed_client_reconnects_total",
			"successful re-dials of the attested store channel", appLabel)
	}
	if !cfg.Lazy {
		ch, err := c.dialChannel()
		if err != nil {
			return nil, err
		}
		c.ch = ch
	}
	return c, nil
}

// NewRemoteClient wraps an already-established channel. Reconnection
// is unavailable (the client does not know how the channel was built),
// so a broken channel is terminal for the client.
func NewRemoteClient(ch *wire.Channel) *RemoteClient {
	cfg := RemoteConfig{}
	cfg.fillDefaults()
	return &RemoteClient{cfg: cfg, ch: ch}
}

// Retries reports the number of request retries performed.
func (c *RemoteClient) Retries() int64 { return c.retries.Load() }

// Reconnects reports the number of successful re-dials (not counting
// the initial connection).
func (c *RemoteClient) Reconnects() int64 { return c.reconnects.Load() }

// dialChannel establishes one attested channel, bounding connect plus
// handshake with DialTimeout.
func (c *RemoteClient) dialChannel() (*wire.Channel, error) {
	timeout := c.cfg.DialTimeout
	if timeout < 0 {
		timeout = 0
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dedup: dial store: %w", err)
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	ch, err := wire.ClientHandshakeTrust(conn, c.app, c.storeMeas, c.cfg.Trust)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dedup: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return ch, nil
}

// errClientClosed is returned from requests after Close.
var errClientClosed = errors.New("dedup: remote client closed")

// roundTrip sends one request and waits for its reply, applying the
// per-request deadline, retry policy and transparent reconnect.
func (c *RemoteClient) roundTrip(req wire.Message) (wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	attempts := 1 + c.cfg.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			c.retriesC.Inc()
			sleepJittered(backoff)
			backoff *= 2
			if backoff > c.cfg.RetryMaxBackoff {
				backoff = c.cfg.RetryMaxBackoff
			}
		}
		msg, err := c.tryOnce(req)
		if err != nil {
			lastErr = err
			if !isTransient(err) {
				return nil, err
			}
			continue
		}
		// A rate-limited PUT is the store asking us to slow down
		// (Section III-D quota); honour it by backing off and retrying
		// unless this was the final attempt.
		if pr, ok := msg.(wire.PutResponse); ok && !pr.OK && isRateLimited(pr.Err) && attempt < attempts-1 {
			lastErr = fmt.Errorf("%w: %s", ErrPutRejected, pr.Err)
			continue
		}
		return msg, nil
	}
	return nil, lastErr
}

// tryOnce performs a single request attempt on the current channel,
// (re)connecting first if necessary. Any transport error poisons the
// channel (its cipher counters can no longer match the peer's), so the
// channel is dropped and the next attempt re-handshakes.
func (c *RemoteClient) tryOnce(req wire.Message) (wire.Message, error) {
	if c.ch == nil {
		if !c.canRedial {
			return nil, errors.New("dedup: store channel lost (no redial information)")
		}
		ch, err := c.dialChannel()
		if err != nil {
			return nil, err
		}
		c.ch = ch
		c.reconnects.Add(1)
		c.reconnectsC.Inc()
	}
	ch := c.ch
	if c.cfg.RequestTimeout > 0 {
		ch.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	}
	err := ch.SendMessage(req)
	var msg wire.Message
	if err == nil {
		msg, err = ch.RecvMessage()
	}
	if c.cfg.RequestTimeout > 0 {
		ch.SetDeadline(time.Time{})
	}
	if err != nil {
		ch.Close()
		c.ch = nil
		return nil, err
	}
	return msg, nil
}

// isTransient reports whether a request error is worth retrying on a
// fresh connection: timeouts, connection resets/refusals and peer
// closes. Attestation failures and protocol violations are not.
func isTransient(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	return false
}

// isRateLimited recognises the store's rate-limit rejection reason in a
// PutResponse (the byte-space quota, by contrast, is not transient).
func isRateLimited(reason string) bool {
	return strings.Contains(reason, "rate limit")
}

// sleepJittered sleeps for d ±50%, decorrelating the retry schedules
// of concurrent clients hammering a recovering store.
func sleepJittered(d time.Duration) {
	if d <= 0 {
		return
	}
	half := int64(d / 2)
	time.Sleep(time.Duration(half + rand.Int63n(half+1)))
}

// Get implements StoreClient.
func (c *RemoteClient) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	msg, err := c.roundTrip(wire.GetRequest{Tag: tag})
	if err != nil {
		return mle.Sealed{}, false, fmt.Errorf("dedup: get: %w", err)
	}
	resp, ok := msg.(wire.GetResponse)
	if !ok {
		return mle.Sealed{}, false, fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
	}
	return resp.Sealed, resp.Found, nil
}

// Put implements StoreClient.
func (c *RemoteClient) Put(tag mle.Tag, sealed mle.Sealed, replace bool) error {
	msg, err := c.roundTrip(wire.PutRequest{Tag: tag, Sealed: sealed, Replace: replace})
	if err != nil {
		return fmt.Errorf("dedup: put: %w", err)
	}
	resp, ok := msg.(wire.PutResponse)
	if !ok {
		return fmt.Errorf("dedup: unexpected reply %v", msg.Kind())
	}
	if !resp.OK {
		return fmt.Errorf("%w: %s", ErrPutRejected, resp.Err)
	}
	return nil
}

// Close implements StoreClient.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.ch == nil {
		return nil
	}
	err := c.ch.Close()
	c.ch = nil
	return err
}
