// Micro-benchmarks for the four workload substrates themselves,
// independent of the deduplication machinery. These calibrate the
// baselines of Fig. 5 and document the raw performance of the
// from-scratch implementations.
package speed_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"speed/internal/compress"
	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/mapreduce"
	"speed/internal/mle"
	"speed/internal/pattern"
	"speed/internal/sift"
	"speed/internal/store"
	"speed/internal/workload"
)

func BenchmarkSubstrateSIFTDetect(b *testing.B) {
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			img := workload.New(1).Image(size, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sift.Detect(img, sift.DefaultParams())
			}
		})
	}
}

func BenchmarkSubstrateSIFTMatch(b *testing.B) {
	img := workload.New(2).Image(192, 192)
	kps := sift.Detect(img, sift.DefaultParams())
	if len(kps) == 0 {
		b.Skip("no keypoints")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sift.MatchDescriptors(kps, kps, 0)
	}
}

func BenchmarkSubstrateCompress(b *testing.B) {
	for _, size := range []int{64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			text := workload.New(3).Text(size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = compress.Compress(text)
			}
		})
	}
}

func BenchmarkSubstrateDecompress(b *testing.B) {
	text := workload.New(4).Text(1 << 20)
	comp := compress.Compress(text)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstratePatternScanAC(b *testing.B) {
	src := workload.New(5)
	rules := src.SnortRules(3700)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		b.Fatal(err)
	}
	payload := src.Packet(64<<10, rules, 0.05)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rs.Scan(payload)
	}
}

func BenchmarkSubstratePatternScanSequential(b *testing.B) {
	src := workload.New(6)
	rules := src.SnortRules(3700)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		b.Fatal(err)
	}
	payload := src.Packet(2<<10, rules, 0.05)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rs.ScanSequential(payload)
	}
}

func BenchmarkSubstrateRegexMatch(b *testing.B) {
	re := pattern.MustCompileRegex(`admin[a-z0-9]{0,8}\.php`, true)
	payload := workload.New(7).Packet(64<<10, nil, 0)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = re.Match(payload)
	}
}

func BenchmarkSubstrateBoW(b *testing.B) {
	src := workload.New(8)
	var corpus strings.Builder
	for i := 0; i < 1000; i++ {
		corpus.WriteString(src.WebPage(200))
		corpus.WriteByte('\n')
	}
	docs := strings.Split(corpus.String(), "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.BagOfWords(docs, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateTFIDF(b *testing.B) {
	src := workload.New(9)
	docs := make([]string, 200)
	for i := range docs {
		docs[i] = src.WebPage(150)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapreduce.TFIDF(docs, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoalescing measures concurrent identical calls with
// and without in-flight coalescing: with it, contention collapses to
// one computation per distinct input.
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, mode := range []struct {
		name       string
		noCoalesce bool
	}{{"Coalesce", false}, {"NoCoalesce", true}} {
		b.Run(mode.name, func(b *testing.B) {
			platform := enclave.NewPlatform(enclave.Config{})
			appEnc, err := platform.Create("app", []byte("app"))
			if err != nil {
				b.Fatal(err)
			}
			storeEnc, err := platform.Create("store", []byte("store"))
			if err != nil {
				b.Fatal(err)
			}
			st, err := store.New(store.Config{Enclave: storeEnc})
			if err != nil {
				b.Fatal(err)
			}
			rt, err := dedup.NewRuntime(dedup.Config{
				Enclave:    appEnc,
				Client:     dedup.NewLocalClient(st, appEnc.Measurement()),
				NoCoalesce: mode.noCoalesce,
				Logf:       func(string, ...any) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				_ = rt.Close()
				st.Close()
			})
			// A moderately expensive computation over a rotating set of
			// inputs, hammered by parallel callers.
			compute := func(in []byte) ([]byte, error) {
				sum := byte(0)
				for i := 0; i < 1_000_000; i++ {
					sum += in[i%len(in)]
				}
				return []byte{sum}, nil
			}
			var id mle.FuncID
			id[0] = 7
			var counter int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := atomic.AddInt64(&counter, 1)
					input := []byte(fmt.Sprintf("in-%d", n/64)) // 64 callers share each input
					if _, _, err := rt.Execute(id, input, compute); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAblationObliviousGet quantifies the oblivious-lookup cost
// at a fixed dictionary size.
func BenchmarkAblationObliviousGet(b *testing.B) {
	for _, mode := range []struct {
		name      string
		oblivious bool
	}{{"Plain", false}, {"Oblivious", true}} {
		b.Run(mode.name, func(b *testing.B) {
			platform := enclave.NewPlatform(enclave.Config{})
			storeEnc, err := platform.Create("store", []byte("store"))
			if err != nil {
				b.Fatal(err)
			}
			st, err := store.New(store.Config{Enclave: storeEnc, Oblivious: mode.oblivious})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(st.Close)
			var owner enclave.Measurement
			const entries = 1000
			mkTag := func(i int) mle.Tag {
				var t mle.Tag
				t[0], t[1] = byte(i), byte(i>>8)
				return t
			}
			for i := 0; i < entries; i++ {
				if _, err := st.Put(owner, mkTag(i), mle.Sealed{Blob: []byte("x")}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found, err := st.Get(mkTag(i % entries)); err != nil || !found {
					b.Fatal("miss")
				}
			}
		})
	}
}
