package dedup

import (
	"bytes"
	"testing"

	"speed/internal/mle"
)

// TestMuxRoundTripAllocBound holds the full mux GET-hit path — append
// marshal, envelope send, server dispatch, owned decode, cross-
// goroutine handoff — to a small allocation budget. The wire layer
// underneath is allocation-free (see internal/wire hot tests); what
// remains here is the per-request bookkeeping the mux design requires
// (waiter channel, pending-map entry, interface boxing, and the
// OwnMessage copy that detaches the response from the channel's
// receive scratch). The bound is deliberately loose — its job is to
// catch a regression that reintroduces per-frame buffer allocations,
// not to freeze the exact count.
func TestMuxRoundTripAllocBound(t *testing.T) {
	env := newMuxEnv(t, nil, RemoteConfig{})

	tag := tagFromString("alloc-bound-tag")
	sealed := mle.Sealed{
		Challenge:  bytes.Repeat([]byte{0xC1}, mle.ChallengeSize),
		WrappedKey: bytes.Repeat([]byte{0xD2}, mle.KeySize),
		Blob:       bytes.Repeat([]byte{0xAB}, 4096),
	}
	if err := env.client.Put(tag, sealed, false); err != nil {
		t.Fatalf("Put: %v", err)
	}

	get := func() {
		got, found, err := env.client.Get(tag)
		if err != nil || !found {
			t.Fatalf("Get = (found=%v, err=%v)", found, err)
		}
		if len(got.Blob) != len(sealed.Blob) {
			t.Fatalf("blob length %d, want %d", len(got.Blob), len(sealed.Blob))
		}
	}
	// Warm every scratch buffer on both endpoints.
	for i := 0; i < 5; i++ {
		get()
	}
	// The server and mux reader run on other goroutines;
	// AllocsPerRun counts their allocations too, which is exactly what
	// we want: the budget covers the whole round trip.
	const budget = 100
	if n := testing.AllocsPerRun(200, get); n > budget {
		t.Errorf("mux GET hit allocates %v times per op, want <= %d", n, budget)
	}
}
