// Package engine mirrors the store/engine dictionary record shape the
// sealflow analyzer treats as a taint source: Challenge and WrappedKey
// are in-enclave secrets, Blob is AEAD ciphertext.
package engine

type Record struct {
	Challenge  []byte
	WrappedKey []byte
	Blob       []byte
	BlobSize   int64
}
