package compress

import (
	"container/heap"
	"sort"
)

// Canonical, length-limited Huffman coding over the 256-symbol byte
// alphabet. Code lengths are limited to maxCodeLen so they pack into
// nibbles in the container header; the limit is enforced with the
// standard overflow-redistribution pass used by zlib.
const maxCodeLen = 15

type huffNode struct {
	freq        int64
	symbol      int // -1 for internal
	left, right int // indices into the node arena
}

type nodeHeap struct {
	arena *[]huffNode
	idx   []int
}

func (h nodeHeap) Len() int { return len(h.idx) }
func (h nodeHeap) Less(i, j int) bool {
	a, b := (*h.arena)[h.idx[i]], (*h.arena)[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.symbol < b.symbol // deterministic tie-break
}
func (h nodeHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() (out any) {
	out, h.idx = h.idx[len(h.idx)-1], h.idx[:len(h.idx)-1]
	return out
}

// buildCodeLengths computes per-symbol Huffman code lengths from
// frequencies, limited to maxCodeLen bits.
func buildCodeLengths(freq [256]int64) [256]uint8 {
	var lengths [256]uint8
	arena := make([]huffNode, 0, 512)
	h := nodeHeap{arena: &arena}
	for s, f := range freq {
		if f > 0 {
			arena = append(arena, huffNode{freq: f, symbol: s, left: -1, right: -1})
			h.idx = append(h.idx, len(arena)-1)
		}
	}
	switch len(h.idx) {
	case 0:
		return lengths
	case 1:
		lengths[arena[h.idx[0]].symbol] = 1
		return lengths
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(int)
		b := heap.Pop(&h).(int)
		arena = append(arena, huffNode{
			freq:   arena[a].freq + arena[b].freq,
			symbol: -1,
			left:   a,
			right:  b,
		})
		heap.Push(&h, len(arena)-1)
	}
	root := h.idx[0]

	// Depth-first traversal assigning depths.
	type item struct{ node, depth int }
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := arena[it.node]
		if n.symbol >= 0 {
			d := it.depth
			if d == 0 {
				d = 1
			}
			lengths[n.symbol] = uint8(d)
			continue
		}
		stack = append(stack, item{n.left, it.depth + 1}, item{n.right, it.depth + 1})
	}
	limitLengths(&lengths)
	return lengths
}

// limitLengths enforces maxCodeLen by moving overflowed leaves up,
// preserving the Kraft inequality.
func limitLengths(lengths *[256]uint8) {
	over := false
	for _, l := range lengths {
		if l > maxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	// Clamp and compute Kraft sum in units of 2^-maxCodeLen.
	var kraft int64
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		if l > maxCodeLen {
			lengths[i] = maxCodeLen
			l = maxCodeLen
		}
		kraft += 1 << (maxCodeLen - l)
	}
	// While oversubscribed, demote the deepest non-max leaf.
	limit := int64(1) << maxCodeLen
	for kraft > limit {
		// Find a leaf at maxCodeLen and one shallower leaf to deepen.
		deepened := false
		for l := maxCodeLen - 1; l >= 1 && !deepened; l-- {
			for i := range lengths {
				if lengths[i] == uint8(l) {
					lengths[i]++
					kraft -= 1 << (maxCodeLen - l)
					kraft += 1 << (maxCodeLen - l - 1)
					deepened = true
					break
				}
			}
		}
		if !deepened {
			break // cannot happen with <= 256 symbols
		}
	}
}

// canonicalCodes assigns canonical code values from lengths: shorter
// codes first, ties broken by symbol order.
func canonicalCodes(lengths [256]uint8) [256]uint32 {
	type sym struct {
		s int
		l uint8
	}
	syms := make([]sym, 0, 256)
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sym{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	var codes [256]uint32
	code := uint32(0)
	prevLen := uint8(0)
	for _, sm := range syms {
		code <<= (sm.l - prevLen)
		codes[sm.s] = code
		code++
		prevLen = sm.l
	}
	return codes
}

// huffDecoder is a simple canonical decoder using first-code tables.
type huffDecoder struct {
	// firstCode[l] is the first canonical code of length l;
	// firstSym[l] indexes into syms for that code.
	firstCode [maxCodeLen + 2]uint32
	firstSym  [maxCodeLen + 2]int
	count     [maxCodeLen + 2]int
	syms      []uint8
	maxLen    uint8
}

func newHuffDecoder(lengths [256]uint8) *huffDecoder {
	d := &huffDecoder{}
	for _, l := range lengths {
		if l > 0 {
			d.count[l]++
			if l > d.maxLen {
				d.maxLen = l
			}
		}
	}
	code := uint32(0)
	symIdx := 0
	for l := uint8(1); l <= d.maxLen; l++ {
		code <<= 1
		d.firstCode[l] = code
		d.firstSym[l] = symIdx
		code += uint32(d.count[l])
		symIdx += d.count[l]
	}
	d.syms = make([]uint8, symIdx)
	// Fill symbols in canonical order.
	idx := make([]int, maxCodeLen+2)
	copy(idx, d.firstSym[:])
	for s, l := range lengths {
		if l > 0 {
			d.syms[idx[l]] = uint8(s)
			idx[l]++
		}
	}
	return d
}

// decode reads one symbol from the bit reader.
func (d *huffDecoder) decode(br *bitReader) (uint8, error) {
	code := uint32(0)
	for l := uint8(1); l <= d.maxLen; l++ {
		bit, err := br.readBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | bit
		if d.count[l] > 0 && code < d.firstCode[l]+uint32(d.count[l]) && code >= d.firstCode[l] {
			return d.syms[d.firstSym[l]+int(code-d.firstCode[l])], nil
		}
	}
	return 0, errCorrupt
}
