package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Autosaver periodically makes the store durable, so a crash (power
// loss, SIGKILL) costs at most one interval of dictionary growth
// instead of the whole warm cache. It is engine-aware:
//
//   - On a volatile engine (memory), each save seals a full snapshot
//     and writes it to the configured file through a temp file and an
//     atomic rename — a crash mid-write leaves the previous snapshot
//     intact, never a torn file.
//   - On a persistent engine (log), a full snapshot would duplicate
//     what the WAL and segments already hold, so each save is instead a
//     checkpoint trigger: flush the memtable and fsync the WAL. This
//     bounds recovery work (and data loss under -fsync none/interval)
//     to one autosave interval.
//
// Saves() counts completed saves in both modes.
type Autosaver struct {
	store    *Store
	path     string
	interval time.Duration
	logf     func(format string, args ...any)

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	started bool
	saves   int64
}

// NewAutosaver creates an autosaver that seals st to path every
// interval. logf may be nil to discard diagnostics.
func NewAutosaver(st *Store, path string, interval time.Duration, logf func(format string, args ...any)) *Autosaver {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Autosaver{
		store:    st,
		path:     path,
		interval: interval,
		logf:     logf,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SaveOnce performs one save: a checkpoint on a persistent engine, a
// sealed snapshot atomically replacing the target file otherwise.
func (a *Autosaver) SaveOnce() error {
	if a.store.Persistent() {
		if err := a.store.Checkpoint(); err != nil {
			return fmt.Errorf("autosave: checkpoint: %w", err)
		}
		a.mu.Lock()
		a.saves++
		a.mu.Unlock()
		return nil
	}
	snap, err := a.store.SealSnapshot()
	if err != nil {
		return fmt.Errorf("autosave: seal: %w", err)
	}
	tmp := a.path + ".tmp"
	if err := writeFileSync(tmp, snap, 0o600); err != nil {
		return fmt.Errorf("autosave: write: %w", err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("autosave: rename: %w", err)
	}
	if err := syncDir(filepath.Dir(a.path)); err != nil {
		return fmt.Errorf("autosave: sync dir: %w", err)
	}
	a.mu.Lock()
	a.saves++
	a.mu.Unlock()
	return nil
}

// Saves reports how many snapshots have been written.
func (a *Autosaver) Saves() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.saves
}

// Start launches periodic saving; calling it more than once is a
// no-op. Stop shuts it down.
func (a *Autosaver) Start() {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	go func() {
		defer close(a.done)
		ticker := time.NewTicker(a.interval)
		defer ticker.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-ticker.C:
				if err := a.SaveOnce(); err != nil {
					// A save racing shutdown is expected; anything else
					// is worth a diagnostic, and the next tick retries.
					a.logf("store: %v", err)
				}
			}
		}
	}()
}

// Stop terminates periodic saving and, if Start was called, waits for
// the worker to exit. Safe to call multiple times. It does not write a
// final snapshot — shutdown paths that want one call SaveOnce (or
// SealSnapshot) themselves.
func (a *Autosaver) Stop() {
	a.once.Do(func() { close(a.stop) })
	a.mu.Lock()
	started := a.started
	a.mu.Unlock()
	if started {
		<-a.done
	}
}
