package bench

import (
	"fmt"
	"net"
	"strings"
	"time"

	"speed/internal/cluster"
	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/store"
)

// Cluster exercises the multi-node ResultStore tier end to end: a
// Runtime executes batched calls against an N-node consistent-hash
// ring, one member is killed mid-run, and the router must absorb the
// outage — zero failed Execute calls, with the hit rate recovering to
// the replicas once failover settles.

// ClusterConfig tunes the cluster fault-injection run.
type ClusterConfig struct {
	// Nodes is the ring size; default 3.
	Nodes int
	// Replicas is the per-tag replication factor; default 2.
	Replicas int
	// Passes is how many batch passes each phase runs; default 5.
	Passes int
	// Inputs is the distinct-input working set per pass; default 32.
	Inputs int
}

// ClusterPhase is the measured outcome of one phase.
type ClusterPhase struct {
	Name        string  `json:"name"`
	Calls       int     `json:"calls"`
	Errors      int     `json:"errors"`
	Reused      int64   `json:"reused"`
	Computed    int64   `json:"computed"`
	HitRate     float64 `json:"hit_rate"`
	Failovers   int64   `json:"failovers"`
	ReadRepairs int64   `json:"read_repairs"`
	NodesUp     int     `json:"nodes_up"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// Cluster runs the phases and returns their measurements.
func Cluster(cfg ClusterConfig) ([]ClusterPhase, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 5
	}
	if cfg.Inputs <= 0 {
		cfg.Inputs = 32
	}

	platform := enclave.NewPlatform(enclave.Config{})
	appEnc, err := platform.Create("cluster-app", []byte("cluster app code"))
	if err != nil {
		return nil, err
	}
	// Every member runs the same store code — one shared measurement,
	// distinct enclave names, as in a real fleet.
	storeCode := []byte("cluster store code")
	var (
		addrs     []string
		servers   []*store.Server
		storeMeas enclave.Measurement
	)
	for i := 0; i < cfg.Nodes; i++ {
		enc, err := platform.Create(fmt.Sprintf("cluster-store-%d", i), storeCode)
		if err != nil {
			return nil, err
		}
		storeMeas = enc.Measurement()
		st, err := store.New(store.Config{Enclave: enc})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
		go func() { _ = srv.Serve() }()
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()

	client, err := cluster.New(cluster.Config{
		Nodes:            addrs,
		Replicas:         cfg.Replicas,
		App:              appEnc,
		StoreMeasurement: storeMeas,
		FailThreshold:    2,
		ProbeInterval:    25 * time.Millisecond,
		Telemetry:        registry,
		Logf:             func(string, ...any) {},
		Remote: dedup.RemoteConfig{
			DialTimeout:    300 * time.Millisecond,
			RequestTimeout: time.Second,
			MaxRetries:     -1,
		},
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave:   appEnc,
		Client:    client,
		Telemetry: registry,
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("clusterbench", "1.0", []byte("cluster bench lib"))
	id, err := rt.Resolve(dedup.FuncDesc{Library: "clusterbench", Version: "1.0", Signature: "xform(x)"})
	if err != nil {
		return nil, err
	}
	compute := func(in []byte) ([]byte, error) {
		out := make([]byte, len(in))
		for i, b := range in {
			out[i] = b ^ 0x5A
		}
		return out, nil
	}
	inputs := make([][]byte, cfg.Inputs)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("cluster-bench-input-%d", i))
	}

	runPhase := func(name string, passes int) (ClusterPhase, error) {
		before := rt.Stats()
		failoversBefore := client.Failovers()
		repairsBefore := client.ReadRepairs()
		start := time.Now()
		calls, errs := 0, 0
		for p := 0; p < passes; p++ {
			results, err := rt.ExecuteBatch(id, inputs, compute)
			if err != nil {
				// A whole-batch error counts every item as failed.
				calls += len(inputs)
				errs += len(inputs)
				continue
			}
			for _, r := range results {
				calls++
				if r.Err != nil {
					errs++
				}
			}
		}
		after := rt.Stats()
		ph := ClusterPhase{
			Name:        name,
			Calls:       calls,
			Errors:      errs,
			Reused:      after.Reused - before.Reused,
			Computed:    after.Computed - before.Computed,
			Failovers:   client.Failovers() - failoversBefore,
			ReadRepairs: client.ReadRepairs() - repairsBefore,
			NodesUp:     client.NodesUp(),
			ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		}
		if calls > 0 {
			ph.HitRate = float64(ph.Reused) / float64(calls)
		}
		return ph, nil
	}

	var phases []ClusterPhase
	p, err := runPhase("warmup", 1)
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)
	p, err = runPhase("pre-kill", cfg.Passes)
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)

	// Kill one member mid-run; it stays dead. Every tag keeps at least
	// one live replica, so the router must keep every call succeeding.
	if err := servers[0].Close(); err != nil {
		return nil, err
	}
	p, err = runPhase("node killed", cfg.Passes)
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)
	p, err = runPhase("failed over", cfg.Passes)
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)
	return phases, nil
}

// RenderCluster formats the phase table plus the acceptance summary.
func RenderCluster(nodes, replicas int, phases []ClusterPhase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-node ResultStore: %d-node ring, %d replicas, one member killed mid-run\n",
		nodes, replicas)
	fmt.Fprintf(&b, "  %-12s %7s %7s %7s %9s %8s %10s %8s %7s %10s\n",
		"phase", "calls", "errors", "reused", "computed", "hitrate", "failovers", "repairs", "up", "elapsed")
	for _, p := range phases {
		fmt.Fprintf(&b, "  %-12s %7d %7d %7d %9d %7.1f%% %10d %8d %7d %9.1fms\n",
			p.Name, p.Calls, p.Errors, p.Reused, p.Computed, 100*p.HitRate,
			p.Failovers, p.ReadRepairs, p.NodesUp, p.ElapsedMS)
	}
	var pre, post ClusterPhase
	errors := 0
	for _, p := range phases {
		errors += p.Errors
		switch p.Name {
		case "pre-kill":
			pre = p
		case "failed over":
			post = p
		}
	}
	fmt.Fprintf(&b, "  total request failures: %d (want 0)\n", errors)
	if pre.HitRate > 0 {
		fmt.Fprintf(&b, "  post-failover hit rate: %.1f%% of pre-kill (%.1f%% vs %.1f%%, want > 90%%)\n",
			100*post.HitRate/pre.HitRate, 100*post.HitRate, 100*pre.HitRate)
	}
	return b.String()
}
