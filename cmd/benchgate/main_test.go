package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineFixture = `goos: linux
goarch: amd64
pkg: speed/internal/wire
BenchmarkChannelRoundTrip-8   	  100000	      5000 ns/op	 900.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkChannelRoundTrip-8   	  100000	      5100 ns/op	 890.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkChannelRoundTrip-8   	  100000	      4900 ns/op	 910.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkHotAppendMarshal-8   	 2000000	       600 ns/op	6000.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkHotAppendMarshal-8   	 2000000	       610 ns/op	5900.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkHotAppendMarshal-8   	 2000000	       590 ns/op	6100.00 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	speed/internal/wire	3.000s
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseLine(t *testing.T) {
	name, ns, b, allocs, ok := parseLine("BenchmarkChannelRoundTrip-16   \t  100000\t      5000 ns/op\t 900.00 MB/s\t    4096 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid line")
	}
	if name != "BenchmarkChannelRoundTrip" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", name)
	}
	if ns != 5000 || b != 4096 || allocs != 2 {
		t.Errorf("parsed (%v, %v, %v), want (5000, 4096, 2)", ns, b, allocs)
	}

	// Without -benchmem, B/op and allocs/op are absent.
	_, ns, b, allocs, ok = parseLine("BenchmarkFoo-4   100  12.5 ns/op")
	if !ok || ns != 12.5 || !math.IsNaN(b) || !math.IsNaN(allocs) {
		t.Errorf("bare line parsed as (%v, %v, %v, %v)", ns, b, allocs, ok)
	}

	for _, junk := range []string{"PASS", "ok  \tspeed/internal/wire\t3.0s", "goos: linux", ""} {
		if _, _, _, _, ok := parseLine(junk); ok {
			t.Errorf("parseLine accepted %q", junk)
		}
	}
}

func TestParseFile(t *testing.T) {
	samples, err := parseFile(writeTemp(t, baselineFixture))
	if err != nil {
		t.Fatal(err)
	}
	s := samples["BenchmarkChannelRoundTrip"]
	if s == nil || len(s.nsPerOp) != 3 {
		t.Fatalf("round trip samples = %+v, want 3 repetitions", s)
	}
	if got := mean(s.nsPerOp); got != 5000 {
		t.Errorf("mean ns/op = %v, want 5000", got)
	}
}

func TestCompareAccepts(t *testing.T) {
	baseline, _ := parseFile(writeTemp(t, baselineFixture))

	// Identical run: pass.
	if report, failed := compare(baseline, baseline, 0.30); failed {
		t.Errorf("identical run failed the gate:\n%s", report)
	}

	// Small, in-threshold time wobble: pass.
	wobble := strings.NewReplacer("5000 ns/op", "5300 ns/op", "5100 ns/op", "5350 ns/op", "4900 ns/op", "5250 ns/op").Replace(baselineFixture)
	fresh, _ := parseFile(writeTemp(t, wobble))
	if report, failed := compare(baseline, fresh, 0.30); failed {
		t.Errorf("in-threshold wobble failed the gate:\n%s", report)
	}
}

// TestCompareFailsRegressedAllocs is the dry run the acceptance
// criteria ask for: a deliberately regressed build — the hot path
// picking up per-op allocations — must fail the gate even when timing
// looks fine.
func TestCompareFailsRegressedAllocs(t *testing.T) {
	baseline, _ := parseFile(writeTemp(t, baselineFixture))
	regressed := strings.ReplaceAll(baselineFixture, "0 B/op\t       0 allocs/op", "4096 B/op\t       2 allocs/op")
	fresh, _ := parseFile(writeTemp(t, regressed))

	report, failed := compare(baseline, fresh, 0.30)
	if !failed {
		t.Fatalf("allocation regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op") {
		t.Errorf("report does not name the allocs/op regression:\n%s", report)
	}
}

func TestCompareFailsRegressedTime(t *testing.T) {
	baseline, _ := parseFile(writeTemp(t, baselineFixture))
	// +100% with tight spread: over threshold and significant.
	slowed := strings.NewReplacer("5000 ns/op", "10000 ns/op", "5100 ns/op", "10100 ns/op", "4900 ns/op", "9900 ns/op").Replace(baselineFixture)
	fresh, _ := parseFile(writeTemp(t, slowed))

	report, failed := compare(baseline, fresh, 0.30)
	if !failed {
		t.Fatalf("2x slowdown passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "ns/op") {
		t.Errorf("report does not name the ns/op regression:\n%s", report)
	}
}

func TestCompareInsignificantNoiseDoesNotFail(t *testing.T) {
	// Huge run-to-run spread on both sides: the mean is over threshold
	// but the difference is inside two sigma, so the gate holds its
	// fire instead of flaking.
	noisyBase := `BenchmarkJitter-8  10  1000 ns/op
BenchmarkJitter-8  10  9000 ns/op
BenchmarkJitter-8  10  2000 ns/op
BenchmarkJitter-8  10  8000 ns/op
`
	noisyNew := `BenchmarkJitter-8  10  2000 ns/op
BenchmarkJitter-8  10  9500 ns/op
BenchmarkJitter-8  10  3500 ns/op
BenchmarkJitter-8  10  11000 ns/op
`
	baseline, err := parseFile(writeTemp(t, noisyBase))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := parseFile(writeTemp(t, noisyNew))
	if err != nil {
		t.Fatal(err)
	}
	if report, failed := compare(baseline, fresh, 0.30); failed {
		t.Errorf("statistically insignificant noise failed the gate:\n%s", report)
	}
}

func TestCompareMissingBenchmarksDoNotFail(t *testing.T) {
	baseline, _ := parseFile(writeTemp(t, baselineFixture))
	onlyOne, _ := parseFile(writeTemp(t, `BenchmarkChannelRoundTrip-8  100000  5000 ns/op  0 B/op  0 allocs/op
BenchmarkBrandNew-8  100000  10 ns/op  0 B/op  0 allocs/op
`))
	report, failed := compare(baseline, onlyOne, 0.30)
	if failed {
		t.Errorf("missing/new benchmarks failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "missing from new run") || !strings.Contains(report, "new benchmark") {
		t.Errorf("report does not flag missing/new benchmarks:\n%s", report)
	}
}
