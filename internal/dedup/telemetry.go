package dedup

import (
	"encoding/hex"
	"time"

	"speed/internal/mle"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// The phases of one Execute call, in chronological order. Each phase
// maps to a step of Algorithm 1/2: tag derivation, the store GET
// OCALL, the Fig. 3 verification + decryption, the computation itself,
// result encryption and the store PUT OCALL; coalesce_wait is the time
// a call spent waiting on an identical in-flight computation.
type execPhase int

const (
	phaseTag execPhase = iota
	phaseCoalesceWait
	phaseStoreGet
	phaseVerifyDecrypt
	phaseCompute
	phaseEncrypt
	phaseStorePut
	numPhases
)

var phaseNames = [numPhases]string{
	"tag", "coalesce_wait", "store_get", "verify_decrypt",
	"compute", "encrypt", "store_put",
}

// defaultTraceSampleRate traces one Execute call in every N by
// default; see Config.TraceSampleRate.
const defaultTraceSampleRate = 64

// execSpan accumulates one call's phase timings on the caller's stack.
// All methods are nil-safe, so the telemetry-disabled path pays one
// pointer test per phase boundary and nothing else.
type execSpan struct {
	start      time.Time
	phaseStart [numPhases]time.Duration
	phaseDur   [numPhases]time.Duration
	seen       uint16 // bitmask of phases that completed
}

func (s *execSpan) begin(p execPhase) {
	if s != nil {
		s.phaseStart[p] = time.Since(s.start)
	}
}

func (s *execSpan) end(p execPhase) {
	if s != nil {
		s.phaseDur[p] += time.Since(s.start) - s.phaseStart[p]
		s.seen |= 1 << uint(p)
	}
}

// outcome histogram slots: the four Outcome values plus an error slot.
const (
	numOutcomeSlots = 5
	errorSlot       = numOutcomeSlots - 1
)

// rtMetrics is the runtime's pre-registered metric set. All metric
// lookups and label rendering happen once at NewRuntime; the Execute
// path only touches atomics.
type rtMetrics struct {
	reg         *telemetry.Registry
	execSeconds [numOutcomeSlots]*telemetry.Histogram
	phases      [numPhases]*telemetry.Histogram
	batchItems  *telemetry.Histogram
	sampleEvery uint64
	app         string
}

// newRTMetrics wires the runtime into reg. With a nil registry it
// returns nil and the runtime runs uninstrumented.
func newRTMetrics(reg *telemetry.Registry, rt *Runtime, sampleRate int) *rtMetrics {
	if reg == nil {
		return nil
	}
	app := rt.cfg.Enclave.Name()
	appLabel := telemetry.L("app", app)
	m := &rtMetrics{reg: reg, app: app}
	switch {
	case sampleRate < 0:
		m.sampleEvery = 0 // tracing disabled
	case sampleRate == 0:
		m.sampleEvery = defaultTraceSampleRate
	default:
		m.sampleEvery = uint64(sampleRate)
	}
	outcomeLabels := [numOutcomeSlots]string{
		OutcomeComputed - 1:   "computed",
		OutcomeReused - 1:     "reused",
		OutcomeRecomputed - 1: "recomputed",
		OutcomeCoalesced - 1:  "coalesced",
		errorSlot:             "error",
	}
	for i, lbl := range outcomeLabels {
		m.execSeconds[i] = reg.NewHistogram("speed_execute_seconds",
			"end-to-end Execute latency by outcome", appLabel,
			telemetry.L("outcome", lbl))
	}
	for p := execPhase(0); p < numPhases; p++ {
		m.phases[p] = reg.NewHistogram("speed_execute_phase_seconds",
			"Execute latency per phase", appLabel,
			telemetry.L("phase", phaseNames[p]))
	}
	m.batchItems = reg.NewHistogram("speed_runtime_batch_items",
		"items per ExecuteBatch call (bucket values are item counts, not seconds)", appLabel)
	// Counters mirror the Stats snapshot (one source of truth, read on
	// demand); Retries comes from the same snapshot, so the registry no
	// longer needs the retryCounter side channel.
	for _, c := range []struct {
		name, help string
		field      func(Stats) int64
	}{
		{"speed_runtime_calls_total", "Execute invocations", func(s Stats) int64 { return s.Calls }},
		{"speed_runtime_reused_total", "results served from the store", func(s Stats) int64 { return s.Reused }},
		{"speed_runtime_computed_total", "fresh computations", func(s Stats) int64 { return s.Computed }},
		{"speed_runtime_coalesced_total", "calls that shared an in-flight computation", func(s Stats) int64 { return s.Coalesced }},
		{"speed_runtime_verify_failures_total", "stored entries rejected by verification", func(s Stats) int64 { return s.VerifyFailures }},
		{"speed_runtime_put_errors_total", "failed or rejected uploads", func(s Stats) int64 { return s.PutErrors }},
		{"speed_runtime_bytes_reused_total", "plaintext bytes served from the store", func(s Stats) int64 { return s.BytesReused }},
		{"speed_runtime_degraded_calls_total", "calls served compute-only while the store was down", func(s Stats) int64 { return s.Degraded }},
		{"speed_runtime_store_failures_total", "store transport failures", func(s Stats) int64 { return s.StoreFailures }},
		{"speed_runtime_retries_total", "store request retries", func(s Stats) int64 { return s.Retries }},
	} {
		field := c.field
		reg.NewCounterFunc(c.name, c.help, func() int64 { return field(rt.Stats()) }, appLabel)
	}
	reg.NewGaugeFunc("speed_runtime_degraded", "1 while the circuit breaker is open", func() float64 {
		if rt.Degraded() {
			return 1
		}
		return 0
	}, appLabel)
	return m
}

// record folds a finished call's span into the histograms and returns
// the total latency for the trace sampler. A sampled call's trace ID is
// attached to its latency bucket as an exemplar, so a spike in the
// histogram links straight to an assembled trace in /debug/trace?id=.
func (m *rtMetrics) record(span *execSpan, outcome Outcome, err error, tc wire.TraceContext) time.Duration {
	total := time.Since(span.start)
	slot := errorSlot
	if err == nil && outcome >= OutcomeComputed && outcome <= OutcomeCoalesced {
		slot = int(outcome) - 1
	}
	if tc.Valid() {
		m.execSeconds[slot].ObserveExemplar(total, tc.TraceIDHex())
	} else {
		m.execSeconds[slot].Observe(total)
	}
	m.observePhases(span)
	return total
}

// observePhases records every completed phase of the span.
func (m *rtMetrics) observePhases(span *execSpan) {
	for p := execPhase(0); p < numPhases; p++ {
		if span.seen&(1<<uint(p)) != 0 {
			m.phases[p].Observe(span.phaseDur[p])
		}
	}
}

// startTrace makes the sampling decision for one Execute/ExecuteBatch
// call before any work happens, so a sampled call's context can
// propagate to every store node it touches. It returns the context
// downstream requests carry (Parent set to the root span's ID) and the
// root span ID itself; an unsampled call gets the zero context and
// pays one atomic add and a modulo.
func (rt *Runtime) startTrace() (wire.TraceContext, uint64) {
	m := rt.tel
	if m == nil || m.sampleEvery == 0 || rt.traceN.Add(1)%m.sampleEvery != 0 {
		return wire.TraceContext{}, 0
	}
	root := wire.NewSpanID()
	return wire.TraceContext{ID: wire.NewTraceID(), Parent: root, Sampled: true}, root
}

// recordTrace records a sampled call's root span into the registry's
// trace ring: the TraceID groups it with the spans the router and
// store nodes recorded for the same call, and the SpanID is what their
// ParentID chains lead back to. No-op for unsampled calls.
func (rt *Runtime) recordTrace(name string, id mle.FuncID, tc wire.TraceContext, rootSpan uint64, span *execSpan, outcome Outcome, total time.Duration, err error) {
	m := rt.tel
	if !tc.Valid() {
		return
	}
	ev := telemetry.TraceEvent{
		Time:    time.Now(),
		App:     m.app,
		Name:    name,
		ID:      hex.EncodeToString(id[:4]),
		TotalNS: total.Nanoseconds(),
		TraceID: tc.TraceIDHex(),
		SpanID:  wire.SpanIDHex(rootSpan),
		Node:    m.reg.Node(),
	}
	switch {
	case err != nil:
		ev.Err = err.Error()
	case outcome != 0:
		ev.Outcome = outcome.String()
	}
	for p := execPhase(0); p < numPhases; p++ {
		if span.seen&(1<<uint(p)) != 0 {
			ev.Phases = append(ev.Phases, telemetry.PhaseSpan{
				Name:    phaseNames[p],
				StartNS: span.phaseStart[p].Nanoseconds(),
				DurNS:   span.phaseDur[p].Nanoseconds(),
			})
		}
	}
	m.reg.Trace().Add(ev)
}

// slowLogMinGap rate-limits slow-request logging to one line per gap
// per runtime, so a latency storm cannot flood the log.
const slowLogMinGap = time.Second

// maybeSlowLog emits the structured slow-request line when the call
// exceeded Config.SlowRequestThreshold and the rate limiter allows it.
func (rt *Runtime) maybeSlowLog(op string, id mle.FuncID, tc wire.TraceContext, total time.Duration, outcome Outcome, err error) {
	th := rt.cfg.SlowRequestThreshold
	if th <= 0 || total < th {
		return
	}
	now := time.Now().UnixNano()
	last := rt.slowLogLast.Load()
	if now-last < int64(slowLogMinGap) || !rt.slowLogLast.CompareAndSwap(last, now) {
		return
	}
	status := "ok"
	switch {
	case err != nil:
		status = "error"
	case outcome != 0:
		status = outcome.String()
	}
	trace := "-"
	if tc.Valid() {
		trace = tc.TraceIDHex()
	}
	rt.cfg.Logf("speed: slow request op=%s app=%s func=%s total=%s threshold=%s status=%s trace=%s",
		op, rt.cfg.Enclave.Name(), hex.EncodeToString(id[:4]), total, th, status, trace)
}
