// Package a exercises the atomicmix analyzer: mixed atomic/plain
// access to fields and globals.
package a

import "sync/atomic"

type counter struct {
	n     int64
	plain int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) bad() int64 {
	c.n++ // want `non-atomic access to n`
	return atomic.LoadInt64(&c.n)
}

func (c *counter) badRead() int64 {
	return c.n // want `non-atomic access to n`
}

func (c *counter) good() int64 {
	return atomic.LoadInt64(&c.n)
}

// plain is never touched atomically: plain access is fine.
func (c *counter) bump() {
	c.plain++
}

// Composite-literal initialisation happens before publication: allowed.
func newCounter() *counter {
	return &counter{n: 0}
}

var hits int64

func recordHit() {
	atomic.AddInt64(&hits, 1)
}

func readHits() int64 {
	return hits // want `non-atomic access to hits`
}
