package pattern

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// A Thompson-NFA regular expression engine covering the PCRE subset
// used by IDS rules: literals, '.', character classes with ranges and
// negation, the escapes \d \D \w \W \s \S \xHH and escaped
// metacharacters, anchors ^ and $, quantifiers * + ? {m} {m,} {m,n},
// grouping and alternation, plus an ASCII case-insensitive mode.
// Matching is unanchored (like pcre_exec) and runs in O(len(input) *
// len(program)) with no backtracking.

// ErrBadRegex is returned by CompileRegex for invalid patterns.
var ErrBadRegex = errors.New("pattern: invalid regular expression")

const maxProgramSize = 1 << 16

// charClass is a 256-bit byte membership set.
type charClass [4]uint64

func (c *charClass) add(b byte)      { c[b>>6] |= 1 << (b & 63) }
func (c *charClass) has(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }
func (c *charClass) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.add(byte(b))
	}
}
func (c *charClass) negate() {
	for i := range c {
		c[i] = ^c[i]
	}
}
func (c *charClass) foldCase() {
	for b := byte('a'); b <= 'z'; b++ {
		if c.has(b) {
			c.add(b - 'a' + 'A')
		}
	}
	for b := byte('A'); b <= 'Z'; b++ {
		if c.has(b) {
			c.add(b - 'A' + 'a')
		}
	}
}

// NFA opcodes.
const (
	opChar  = iota + 1 // consume one byte in class; goto next
	opSplit            // fork to next and alt
	opMatch            // accept
	opBOL              // assert beginning of input
	opEOL              // assert end of input
)

type inst struct {
	op    uint8
	class charClass
	next  int32
	alt   int32
}

// Regex is a compiled regular expression, safe for concurrent use.
type Regex struct {
	prog   []inst
	start  int32
	source string
}

// String returns the source pattern.
func (r *Regex) String() string { return r.source }

// CompileRegex compiles the pattern. With foldCase true, matching is
// ASCII case-insensitive (PCRE's /i).
func CompileRegex(pattern string, foldCase bool) (*Regex, error) {
	p := &parser{src: pattern, fold: foldCase}
	frag, err := p.parseAlternation()
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrBadRegex, pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("%w: %q: unexpected %q", ErrBadRegex, pattern, p.src[p.pos])
	}
	match := p.emit(inst{op: opMatch})
	p.patch(frag.out, match)
	return &Regex{prog: p.prog, start: frag.start, source: pattern}, nil
}

// MustCompileRegex is CompileRegex that panics on error, for use with
// static patterns.
func MustCompileRegex(pattern string, foldCase bool) *Regex {
	r, err := CompileRegex(pattern, foldCase)
	if err != nil {
		panic(err)
	}
	return r
}

// ---- parser / compiler ----

// frag is a program fragment: its start instruction and the list of
// dangling next/alt fields (encoded as inst*2 or inst*2+1) waiting to
// be patched.
type frag struct {
	start int32
	out   []int32
}

type parser struct {
	src  string
	pos  int
	fold bool
	prog []inst
}

func (p *parser) emit(in inst) int32 {
	if len(p.prog) >= maxProgramSize {
		// Surfaced as a parse error by the caller via panic/recover?
		// Simpler: grow unbounded is unsafe; truncate with error via
		// sentinel. We return -1 and let patch/parse detect it.
		return -1
	}
	p.prog = append(p.prog, in)
	return int32(len(p.prog) - 1)
}

func (p *parser) patch(outs []int32, target int32) {
	for _, o := range outs {
		idx, isAlt := o/2, o%2 == 1
		if idx < 0 {
			continue
		}
		if isAlt {
			p.prog[idx].alt = target
		} else {
			p.prog[idx].next = target
		}
	}
}

func (p *parser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseAlternation() (frag, error) {
	left, err := p.parseConcat()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return frag{}, err
		}
		split := p.emit(inst{op: opSplit, next: left.start, alt: right.start})
		if split < 0 {
			return frag{}, errors.New("program too large")
		}
		left = frag{start: split, out: append(left.out, right.out...)}
	}
}

func (p *parser) parseConcat() (frag, error) {
	var f *frag
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		piece, err := p.parsePiece()
		if err != nil {
			return frag{}, err
		}
		if f == nil {
			f = &piece
			continue
		}
		p.patch(f.out, piece.start)
		f = &frag{start: f.start, out: piece.out}
	}
	if f == nil {
		// Empty expression: a split that falls straight through.
		nop := p.emit(inst{op: opSplit})
		if nop < 0 {
			return frag{}, errors.New("program too large")
		}
		return frag{start: nop, out: []int32{nop * 2, nop*2 + 1}}, nil
	}
	return *f, nil
}

func (p *parser) parsePiece() (frag, error) {
	atomLo := int32(len(p.prog))
	atom, err := p.parseAtom()
	if err != nil {
		return frag{}, err
	}
	atomHi := int32(len(p.prog)) - 1
	c, ok := p.peek()
	if !ok {
		return atom, nil
	}
	switch c {
	case '*':
		p.pos++
		return p.star(atom)
	case '+':
		p.pos++
		return p.plus(atom)
	case '?':
		p.pos++
		return p.quest(atom)
	case '{':
		return p.parseRepeat(atom, atomLo, atomHi)
	}
	return atom, nil
}

func (p *parser) star(atom frag) (frag, error) {
	split := p.emit(inst{op: opSplit, next: atom.start})
	if split < 0 {
		return frag{}, errors.New("program too large")
	}
	p.patch(atom.out, split)
	return frag{start: split, out: []int32{split*2 + 1}}, nil
}

func (p *parser) plus(atom frag) (frag, error) {
	split := p.emit(inst{op: opSplit, next: atom.start})
	if split < 0 {
		return frag{}, errors.New("program too large")
	}
	p.patch(atom.out, split)
	return frag{start: atom.start, out: []int32{split*2 + 1}}, nil
}

func (p *parser) quest(atom frag) (frag, error) {
	split := p.emit(inst{op: opSplit, next: atom.start})
	if split < 0 {
		return frag{}, errors.New("program too large")
	}
	return frag{start: split, out: append(atom.out, split*2+1)}, nil
}

// parseRepeat handles {m}, {m,} and {m,n} by cloning the atom's
// compiled instruction range ([lo, hi], contiguous because parsePiece
// calls parseRepeat immediately after parseAtom) the required number of
// times.
func (p *parser) parseRepeat(atom frag, lo, hi int32) (frag, error) {
	m, n, err := p.parseBounds()
	if err != nil {
		return frag{}, err
	}
	const maxRepeat = 256
	if m > maxRepeat || (n >= 0 && (n > maxRepeat || n < m)) {
		return frag{}, fmt.Errorf("repeat bounds {%d,%d} invalid or too large", m, n)
	}

	cloned := func(f frag) frag {
		base := int32(len(p.prog))
		for i := lo; i <= hi; i++ {
			in := p.prog[i]
			if in.op == opChar || in.op == opSplit || in.op == opBOL || in.op == opEOL {
				if in.next >= lo && in.next <= hi {
					in.next += base - lo
				}
				if in.op == opSplit && in.alt >= lo && in.alt <= hi {
					in.alt += base - lo
				}
			}
			p.prog = append(p.prog, in)
		}
		out := make([]int32, len(f.out))
		for i, o := range f.out {
			idx, bit := o/2, o%2
			out[i] = (idx+base-lo)*2 + bit
		}
		return frag{start: f.start + base - lo, out: out}
	}

	if len(p.prog) >= maxProgramSize {
		return frag{}, errors.New("program too large")
	}

	// Mandatory part: m copies (the original plus m-1 clones).
	result := atom
	if m == 0 {
		// Entire expression optional.
		switch {
		case n < 0: // {0,} == *
			return p.star(atom)
		case n == 0: // {0,0}: consume nothing
			nop := p.emit(inst{op: opSplit})
			if nop < 0 {
				return frag{}, errors.New("program too large")
			}
			return frag{start: nop, out: []int32{nop * 2, nop*2 + 1}}, nil
		default:
			q, err := p.quest(atom)
			if err != nil {
				return frag{}, err
			}
			result = q
			m = 1 // one optional copy consumed
		}
	}
	for i := 1; i < m; i++ {
		c := cloned(atom)
		p.patch(result.out, c.start)
		result = frag{start: result.start, out: c.out}
	}
	switch {
	case n < 0: // {m,}: last copy loops
		c := cloned(atom)
		loop, err := p.star(c)
		if err != nil {
			return frag{}, err
		}
		p.patch(result.out, loop.start)
		result = frag{start: result.start, out: loop.out}
	case n > m:
		for i := m; i < n; i++ {
			c := cloned(atom)
			q, err := p.quest(c)
			if err != nil {
				return frag{}, err
			}
			p.patch(result.out, q.start)
			result = frag{start: result.start, out: q.out}
		}
	}
	if len(p.prog) > maxProgramSize {
		return frag{}, errors.New("program too large")
	}
	return result, nil
}

func (p *parser) parseBounds() (m, n int, err error) {
	if c, ok := p.peek(); !ok || c != '{' {
		return 0, 0, errors.New("expected {")
	}
	end := strings.IndexByte(p.src[p.pos:], '}')
	if end < 0 {
		return 0, 0, errors.New("unterminated {")
	}
	body := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	comma := strings.IndexByte(body, ',')
	if comma < 0 {
		v, err := strconv.Atoi(body)
		if err != nil {
			return 0, 0, fmt.Errorf("bad repeat %q", body)
		}
		return v, v, nil
	}
	mStr, nStr := body[:comma], body[comma+1:]
	m, err = strconv.Atoi(mStr)
	if err != nil {
		return 0, 0, fmt.Errorf("bad repeat %q", body)
	}
	if nStr == "" {
		return m, -1, nil
	}
	n, err = strconv.Atoi(nStr)
	if err != nil {
		return 0, 0, fmt.Errorf("bad repeat %q", body)
	}
	return m, n, nil
}

func (p *parser) parseAtom() (frag, error) {
	c, ok := p.peek()
	if !ok {
		return frag{}, errors.New("unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		f, err := p.parseAlternation()
		if err != nil {
			return frag{}, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return frag{}, errors.New("missing )")
		}
		p.pos++
		return f, nil
	case '^':
		p.pos++
		i := p.emit(inst{op: opBOL})
		if i < 0 {
			return frag{}, errors.New("program too large")
		}
		return frag{start: i, out: []int32{i * 2}}, nil
	case '$':
		p.pos++
		i := p.emit(inst{op: opEOL})
		if i < 0 {
			return frag{}, errors.New("program too large")
		}
		return frag{start: i, out: []int32{i * 2}}, nil
	case '[':
		cls, err := p.parseClass()
		if err != nil {
			return frag{}, err
		}
		return p.emitClass(cls)
	case '.':
		p.pos++
		var cls charClass
		cls.negate()
		// PCRE '.' excludes newline by default.
		var nl charClass
		nl.add('\n')
		for i := range cls {
			cls[i] &^= nl[i]
		}
		return p.emitClass(cls)
	case '\\':
		cls, err := p.parseEscape()
		if err != nil {
			return frag{}, err
		}
		return p.emitClass(cls)
	case '*', '+', '?', '{', ')':
		return frag{}, fmt.Errorf("misplaced %q", c)
	default:
		p.pos++
		var cls charClass
		cls.add(c)
		return p.emitClass(cls)
	}
}

func (p *parser) emitClass(cls charClass) (frag, error) {
	if p.fold {
		cls.foldCase()
	}
	i := p.emit(inst{op: opChar, class: cls})
	if i < 0 {
		return frag{}, errors.New("program too large")
	}
	return frag{start: i, out: []int32{i * 2}}, nil
}

func (p *parser) parseEscape() (charClass, error) {
	var cls charClass
	p.pos++ // consume backslash
	c, ok := p.peek()
	if !ok {
		return cls, errors.New("trailing backslash")
	}
	p.pos++
	switch c {
	case 'd':
		cls.addRange('0', '9')
	case 'D':
		cls.addRange('0', '9')
		cls.negate()
	case 'w':
		cls.addRange('a', 'z')
		cls.addRange('A', 'Z')
		cls.addRange('0', '9')
		cls.add('_')
	case 'W':
		cls.addRange('a', 'z')
		cls.addRange('A', 'Z')
		cls.addRange('0', '9')
		cls.add('_')
		cls.negate()
	case 's':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			cls.add(b)
		}
	case 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			cls.add(b)
		}
		cls.negate()
	case 'n':
		cls.add('\n')
	case 'r':
		cls.add('\r')
	case 't':
		cls.add('\t')
	case 'x':
		if p.pos+2 > len(p.src) {
			return cls, errors.New("truncated \\x escape")
		}
		v, err := strconv.ParseUint(p.src[p.pos:p.pos+2], 16, 8)
		if err != nil {
			return cls, fmt.Errorf("bad \\x escape %q", p.src[p.pos:p.pos+2])
		}
		p.pos += 2
		cls.add(byte(v))
	default:
		// Escaped literal (metacharacters, punctuation).
		cls.add(c)
	}
	return cls, nil
}

func (p *parser) parseClass() (charClass, error) {
	var cls charClass
	p.pos++ // consume [
	negated := false
	if c, ok := p.peek(); ok && c == '^' {
		negated = true
		p.pos++
	}
	first := true
	for {
		c, ok := p.peek()
		if !ok {
			return cls, errors.New("unterminated character class")
		}
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		var lo byte
		if c == '\\' {
			sub, err := p.parseEscape()
			if err != nil {
				return cls, err
			}
			// An escape inside a class contributes its whole set; a
			// range like \d-x is not supported (PCRE rejects it too).
			for i := 0; i < 256; i++ {
				if sub.has(byte(i)) {
					cls.add(byte(i))
				}
			}
			continue
		}
		lo = c
		p.pos++
		// Range?
		if c2, ok := p.peek(); ok && c2 == '-' {
			if c3 := p.pos + 1; c3 < len(p.src) && p.src[c3] != ']' {
				p.pos++ // consume -
				hi, ok := p.peek()
				if !ok {
					return cls, errors.New("unterminated range")
				}
				if hi == '\\' {
					sub, err := p.parseEscape()
					if err != nil {
						return cls, err
					}
					// Use the single byte if the escape is one byte.
					var hiB byte
					count := 0
					for i := 0; i < 256; i++ {
						if sub.has(byte(i)) {
							hiB = byte(i)
							count++
						}
					}
					if count != 1 {
						return cls, errors.New("bad range endpoint")
					}
					hi = hiB
				} else {
					p.pos++
				}
				if hi < lo {
					return cls, fmt.Errorf("reversed range %c-%c", lo, hi)
				}
				cls.addRange(lo, hi)
				continue
			}
		}
		cls.add(lo)
	}
	if negated {
		cls.negate()
	}
	return cls, nil
}

// ---- execution ----

// Match reports whether the pattern matches anywhere in data
// (unanchored, like pcre_exec).
func (r *Regex) Match(data []byte) bool {
	n := len(r.prog)
	cur := make([]int32, 0, n)
	next := make([]int32, 0, n)
	onCur := make([]bool, n)
	onNext := make([]bool, n)

	var addThread func(list *[]int32, on []bool, pc int32, pos int) bool
	addThread = func(list *[]int32, on []bool, pc int32, pos int) bool {
		if on[pc] {
			return false
		}
		on[pc] = true
		in := r.prog[pc]
		switch in.op {
		case opSplit:
			if addThread(list, on, in.next, pos) {
				return true
			}
			return addThread(list, on, in.alt, pos)
		case opBOL:
			if pos == 0 {
				return addThread(list, on, in.next, pos)
			}
			return false
		case opEOL:
			if pos == len(data) {
				return addThread(list, on, in.next, pos)
			}
			return false
		case opMatch:
			return true
		default:
			*list = append(*list, pc)
			return false
		}
	}

	for pos := 0; pos <= len(data); pos++ {
		// Unanchored: seed a fresh attempt at every position.
		clear(onCur)
		for _, pc := range cur {
			onCur[pc] = true
		}
		if addThread(&cur, onCur, r.start, pos) {
			return true
		}
		if pos == len(data) {
			break
		}
		c := data[pos]
		next = next[:0]
		clear(onNext)
		matched := false
		for _, pc := range cur {
			in := r.prog[pc]
			if in.op == opChar && in.class.has(c) {
				if addThread(&next, onNext, in.next, pos+1) {
					matched = true
					break
				}
			}
		}
		if matched {
			return true
		}
		cur, next = next, cur
		onCur, onNext = onNext, onCur
	}
	return false
}

// MatchString is Match over a string.
func (r *Regex) MatchString(s string) bool {
	return r.Match([]byte(s))
}
