package dedup

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
	"speed/internal/wire"
)

// Fault-injection tests for the robustness layer: a stalled store, a
// store that dies mid-run, and a store that is down at startup must
// all leave Execute returning correct results with no errors, and
// deduplication must resume once the store is healthy again.

// faultEnv is a remote deployment whose server can be killed and
// restarted on the same address against the same backing store.
type faultEnv struct {
	platform *enclave.Platform
	appEnc   *enclave.Enclave
	storeEnc *enclave.Enclave
	store    *store.Store
	addr     string

	mu  sync.Mutex
	srv *store.Server
}

func newFaultEnv(t *testing.T) *faultEnv {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	env := &faultEnv{platform: p, appEnc: appEnc, storeEnc: storeEnc, store: st}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	env.addr = ln.Addr().String()
	env.startServer(t, ln)
	t.Cleanup(func() { env.stopServer() })
	return env
}

func (env *faultEnv) startServer(t *testing.T, ln net.Listener) {
	t.Helper()
	srv := store.NewServer(env.store, ln, store.WithLogf(func(string, ...any) {}))
	go func() { _ = srv.Serve() }()
	env.mu.Lock()
	env.srv = srv
	env.mu.Unlock()
}

func (env *faultEnv) stopServer() {
	env.mu.Lock()
	srv := env.srv
	env.srv = nil
	env.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// restartServer rebinds the original address, retrying briefly in case
// the kernel has not released it yet.
func (env *faultEnv) restartServer(t *testing.T) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", env.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", env.addr, err)
	}
	env.startServer(t, ln)
}

// fastRemoteConfig keeps fault-path timeouts short so tests stay quick.
func fastRemoteConfig() RemoteConfig {
	return RemoteConfig{
		DialTimeout:    250 * time.Millisecond,
		RequestTimeout: 250 * time.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   5 * time.Millisecond,
	}
}

func newFaultRuntime(t *testing.T, env *faultEnv, client StoreClient) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Config{
		Enclave:          env.appEnc,
		Client:           client,
		DegradeThreshold: 2,
		ProbeInterval:    25 * time.Millisecond,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	rt.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	return rt
}

func TestExecuteSurvivesStoreOutageAndRecovers(t *testing.T) {
	env := newFaultEnv(t)
	client, err := DialConfig(env.addr, env.appEnc, env.storeEnc.Measurement(), fastRemoteConfig())
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	rt := newFaultRuntime(t, env, client)
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	compute := func(in []byte) ([]byte, error) { return append([]byte("out:"), in...), nil }

	// Healthy phase: compute + upload, then a dedup hit.
	seed := []byte("outage seed")
	if _, out, err := rt.Execute(id, seed, compute); err != nil || out != OutcomeComputed {
		t.Fatalf("healthy Execute = (%v, %v), want computed", out, err)
	}
	if _, out, err := rt.Execute(id, seed, compute); err != nil || out != OutcomeReused {
		t.Fatalf("healthy Execute 2 = (%v, %v), want reused", out, err)
	}

	// Kill the store mid-run. Concurrent callers must all still get
	// correct results, compute-only, with zero errors.
	env.stopServer()
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				in := []byte(fmt.Sprintf("outage-%d-%d", w, i))
				res, out, err := rt.Execute(id, in, compute)
				if err != nil {
					errCh <- fmt.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				if out != OutcomeComputed && out != OutcomeCoalesced {
					errCh <- fmt.Errorf("worker %d call %d: outcome %v", w, i, out)
					return
				}
				if want := append([]byte("out:"), in...); !bytes.Equal(res, want) {
					errCh <- fmt.Errorf("worker %d call %d: result %q", w, i, res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s := rt.Stats(); s.Degraded == 0 {
		t.Errorf("Stats.Degraded = 0 after outage, want > 0 (stats: %+v)", s)
	}

	// Restart the store on the same address: the background probe must
	// close the breaker and dedup hits must resume (the seed entry
	// survived in the store).
	env.restartServer(t)
	waitFor(t, "breaker to close after store restart", func() bool { return !rt.Degraded() })
	res, out, err := rt.Execute(id, seed, func([]byte) ([]byte, error) {
		return nil, fmt.Errorf("recomputed despite stored result")
	})
	if err != nil {
		t.Fatalf("post-recovery Execute: %v", err)
	}
	if out != OutcomeReused {
		t.Errorf("post-recovery outcome = %v, want reused", out)
	}
	if want := append([]byte("out:"), seed...); !bytes.Equal(res, want) {
		t.Errorf("post-recovery result = %q, want %q", res, want)
	}
	if s := rt.Stats(); s.StoreFailures == 0 {
		t.Errorf("Stats.StoreFailures = 0 after outage, want > 0")
	}
}

// TestExecuteDegradesWhenStoreStalls runs against a store that
// handshakes correctly but never answers requests: the per-request
// deadline must bound the call and degrade it to compute-only.
func TestExecuteDegradesWhenStoreStalls(t *testing.T) {
	env := newFaultEnv(t)
	env.stopServer()

	// A stalling impostor on a fresh port: accepts, handshakes, reads
	// requests, never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				ch, err := wire.ServerHandshake(c, env.storeEnc, nil)
				if err != nil {
					return
				}
				for {
					if _, err := ch.RecvMessage(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	client, err := DialConfig(ln.Addr().String(), env.appEnc, env.storeEnc.Measurement(), fastRemoteConfig())
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	rt := newFaultRuntime(t, env, client)
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}

	start := time.Now()
	in := []byte("stall input")
	res, out, err := rt.Execute(id, in, func(in []byte) ([]byte, error) {
		return append([]byte("out:"), in...), nil
	})
	if err != nil {
		t.Fatalf("Execute against stalled store: %v", err)
	}
	if out != OutcomeComputed {
		t.Errorf("outcome = %v, want computed", out)
	}
	if want := append([]byte("out:"), in...); !bytes.Equal(res, want) {
		t.Errorf("result = %q, want %q", res, want)
	}
	// One attempt + one retry at 250ms each plus backoff: well under 5s,
	// and crucially not forever (the pre-deadline behaviour).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Execute took %v against a stalled store", elapsed)
	}
	s := rt.Stats()
	if s.Degraded == 0 {
		t.Errorf("Stats.Degraded = 0, want > 0")
	}
	if s.Retries == 0 {
		t.Errorf("Stats.Retries = 0, want > 0 (timeout should have been retried)")
	}
}

// TestLazyDialStoreDownAtStartup starts the application before the
// store exists: calls are served compute-only, and once the store
// comes up deduplication kicks in.
func TestLazyDialStoreDownAtStartup(t *testing.T) {
	env := newFaultEnv(t)
	env.stopServer()

	cfg := fastRemoteConfig()
	cfg.Lazy = true
	client, err := DialConfig(env.addr, env.appEnc, env.storeEnc.Measurement(), cfg)
	if err != nil {
		t.Fatalf("DialConfig lazy with store down: %v", err)
	}
	rt := newFaultRuntime(t, env, client)
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	compute := func(in []byte) ([]byte, error) { return append([]byte("out:"), in...), nil }

	in := []byte("startup input")
	if _, out, err := rt.Execute(id, in, compute); err != nil || out != OutcomeComputed {
		t.Fatalf("Execute with store down = (%v, %v), want computed", out, err)
	}
	if s := rt.Stats(); s.Degraded == 0 {
		t.Fatalf("Stats.Degraded = 0 with store down at startup")
	}

	env.restartServer(t)
	waitFor(t, "breaker to close after store came up", func() bool { return !rt.Degraded() })

	// First call after recovery misses and uploads; the second reuses.
	if _, out, err := rt.Execute(id, in, compute); err != nil || out != OutcomeComputed {
		t.Fatalf("Execute after store up = (%v, %v), want computed", out, err)
	}
	if _, out, err := rt.Execute(id, in, compute); err != nil || out != OutcomeReused {
		t.Fatalf("Execute after store up 2 = (%v, %v), want reused", out, err)
	}
}

// TestRemoteClientRetriesRateLimitedPut drives the store's token
// bucket dry and checks the client transparently backs off and
// retries the rejected PUT.
func TestRemoteClientRetriesRateLimitedPut(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, _ := p.Create("app", []byte("app code"))
	storeEnc, _ := p.Create("store", []byte("store code"))
	st, err := store.New(store.Config{
		Enclave: storeEnc,
		Quota:   store.QuotaConfig{PutRatePerSec: 20, PutBurst: 1},
	})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })

	client, err := DialConfig(ln.Addr().String(), appEnc, storeEnc.Measurement(), RemoteConfig{
		MaxRetries:      5,
		RetryBackoff:    30 * time.Millisecond,
		RetryMaxBackoff: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	if err := client.Put(testTag(1), mle.Sealed{Blob: []byte("a")}, false); err != nil {
		t.Fatalf("Put 1: %v", err)
	}
	// The burst token is spent; this PUT is rejected by the rate
	// limiter until the bucket refills (~50ms at 20/s) — the retry
	// schedule covers that comfortably.
	if err := client.Put(testTag(2), mle.Sealed{Blob: []byte("b")}, false); err != nil {
		t.Fatalf("Put 2 (rate limited) not retried to success: %v", err)
	}
	if client.Retries() == 0 {
		t.Error("client.Retries() = 0, want > 0 for the rate-limited PUT")
	}
}
