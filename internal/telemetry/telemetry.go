// Package telemetry is SPEED's lightweight observability core: atomic
// counters and gauges, log-bucketed latency histograms with quantile
// snapshots, and a sampled trace-event ring buffer, exposed over HTTP
// in Prometheus text-exposition format and as JSON.
//
// The paper's value claim is a latency trade — a dedup hit must beat
// recomputing (Section VI, Fig. 5/6) — so the instrumentation is
// designed to stay on in production: the hot path performs only atomic
// adds into pre-registered metrics (no locks, no allocation, no label
// rendering), and every metric type tolerates a nil receiver so an
// uninstrumented deployment pays a single pointer test per site.
//
// Registration is idempotent: requesting a metric whose full name
// (name plus rendered labels) is already registered returns the
// existing instance. Function-backed metrics (CounterFunc, GaugeFunc)
// accumulate instead — re-registering appends the new closure and the
// exported value is the sum — so short-lived components (for example
// the per-case environments of the bench harness) can share one
// registry without losing counts from closed predecessors.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, rendered into the Prometheus label
// set at registration time (never on the hot path).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricMeta is the identity shared by every metric type.
type metricMeta struct {
	name string // family name, e.g. speed_execute_seconds
	help string
	full string // name{k="v",...} — the registry key
	lbls []Label
}

func (m *metricMeta) FullName() string { return m.full }

// renderFull builds the canonical full name with sorted labels.
func renderFull(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing atomic counter. All methods
// are safe on a nil receiver (no-ops), so call sites need no telemetry
// guard.
type Counter struct {
	metricMeta
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	metricMeta
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterFunc exports a monotone value computed on demand (typically a
// closure over an existing stats snapshot). Re-registering the same
// full name appends the function; the exported value is the sum, so
// multiple instrumented components can feed one metric.
type CounterFunc struct {
	metricMeta
	mu  sync.Mutex
	fns []func() int64
}

// Value sums the registered functions.
func (c *CounterFunc) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	fns := c.fns
	c.mu.Unlock()
	var total int64
	for _, fn := range fns {
		total += fn()
	}
	return total
}

func (c *CounterFunc) add(fn func() int64) {
	c.mu.Lock()
	c.fns = append(c.fns, fn)
	c.mu.Unlock()
}

// GaugeFunc exports an instantaneous value computed on demand, with
// the same accumulating re-registration semantics as CounterFunc.
type GaugeFunc struct {
	metricMeta
	mu  sync.Mutex
	fns []func() float64
}

// Value sums the registered functions.
func (g *GaugeFunc) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	fns := g.fns
	g.mu.Unlock()
	var total float64
	for _, fn := range fns {
		total += fn()
	}
	return total
}

func (g *GaugeFunc) add(fn func() float64) {
	g.mu.Lock()
	g.fns = append(g.fns, fn)
	g.mu.Unlock()
}

// Registry holds a set of named metrics plus the trace ring. A nil
// *Registry is the no-op registry: every NewXxx returns nil and the
// nil metrics swallow updates, which is how instrumented code runs
// with telemetry disabled.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	trace   *TraceRing
	node    string
}

// NewRegistry creates an empty registry with a trace ring of the
// default capacity.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]any),
		trace:   NewTraceRing(DefaultTraceCapacity),
	}
}

// Trace returns the registry's trace-event ring (nil for a nil
// registry).
func (r *Registry) Trace() *TraceRing {
	if r == nil {
		return nil
	}
	return r.trace
}

// SetNode records the externally-visible address of the process this
// registry instruments (typically the store or metrics listen address).
// It is included in /debug/trace responses so traces assembled from
// several nodes stay attributable.
func (r *Registry) SetNode(addr string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.node = addr
	r.mu.Unlock()
}

// Node returns the address recorded by SetNode ("" when unset or for a
// nil registry).
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node
}

// register installs the metric under its full name, returning the
// already-registered instance when one exists. It panics when the
// existing metric has a different type — a programming error caught at
// wiring time, never on the hot path.
func (r *Registry) register(full string, fresh any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.metrics[full]; ok {
		if fmt.Sprintf("%T", existing) != fmt.Sprintf("%T", fresh) {
			panic(fmt.Sprintf("telemetry: %s already registered as %T", full, existing))
		}
		return existing
	}
	r.metrics[full] = fresh
	return fresh
}

// NewCounter registers (or returns the existing) counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{metricMeta: metricMeta{name: name, help: help, full: renderFull(name, labels), lbls: labels}}
	return r.register(c.full, c).(*Counter)
}

// NewGauge registers (or returns the existing) gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{metricMeta: metricMeta{name: name, help: help, full: renderFull(name, labels), lbls: labels}}
	return r.register(g.full, g).(*Gauge)
}

// NewCounterFunc registers fn under the name; if the name exists, fn
// is appended and the exported value is the sum of all functions.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64, labels ...Label) *CounterFunc {
	if r == nil {
		return nil
	}
	c := &CounterFunc{metricMeta: metricMeta{name: name, help: help, full: renderFull(name, labels), lbls: labels}}
	c = r.register(c.full, c).(*CounterFunc)
	c.add(fn)
	return c
}

// NewGaugeFunc registers fn under the name with the same accumulating
// semantics as NewCounterFunc.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	if r == nil {
		return nil
	}
	g := &GaugeFunc{metricMeta: metricMeta{name: name, help: help, full: renderFull(name, labels), lbls: labels}}
	g = r.register(g.full, g).(*GaugeFunc)
	g.add(fn)
	return g
}

// NewHistogram registers (or returns the existing) latency histogram.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{metricMeta: metricMeta{name: name, help: help, full: renderFull(name, labels), lbls: labels}}
	return r.register(h.full, h).(*Histogram)
}

// sorted returns the registered metrics ordered by full name, which
// groups label variants of one family together for exposition.
func (r *Registry) sorted() []any {
	r.mu.Lock()
	out := make([]any, 0, len(r.metrics))
	names := make([]string, 0, len(r.metrics))
	for full := range r.metrics {
		names = append(names, full)
	}
	sort.Strings(names)
	for _, full := range names {
		out = append(out, r.metrics[full])
	}
	r.mu.Unlock()
	return out
}

// secondsOf converts a duration to the float seconds used throughout
// the exposition layer.
func secondsOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e9 }
