package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the number of logarithmic latency buckets. Bucket b
// holds observations whose nanosecond value has bit length b, i.e.
// [2^(b-1), 2^b-1] (bucket 0 holds exactly 0ns). 40 buckets span
// 1ns .. ~9 minutes; anything slower clamps into the last bucket.
const numBuckets = 40

// Histogram is a log-bucketed latency histogram. Observations are two
// atomic adds — no locks, no allocation — so it can sit on the Execute
// hot path. Quantiles are estimated at snapshot time by linear
// interpolation within the matching power-of-two bucket, giving a
// worst-case relative error of one bucket width (×2), which is ample
// for telling a 5µs dedup hit from a 5ms recomputation.
type Histogram struct {
	metricMeta
	counts    [numBuckets]atomic.Int64
	sumNS     atomic.Int64
	exemplars [numBuckets]atomic.Pointer[string]
}

// Observe records one duration. Negative durations (clock steps) are
// recorded as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketOf(d)].Add(1)
	h.sumNS.Add(clampNS(d))
}

// ObserveExemplar records one duration and remembers traceID as the
// bucket's exemplar, linking the latency bucket to a concrete sampled
// trace. Call it only on the sampled path: unlike Observe it stores a
// pointer, so it is not allocation-free.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	if h == nil {
		return
	}
	b := bucketOf(d)
	h.counts[b].Add(1)
	h.sumNS.Add(clampNS(d))
	if traceID != "" {
		h.exemplars[b].Store(&traceID)
	}
}

func clampNS(d time.Duration) int64 {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	return ns
}

func bucketOf(d time.Duration) int {
	b := bits.Len64(uint64(clampNS(d)))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketUpperNS is the inclusive nanosecond upper bound of bucket b
// (the last bucket is unbounded).
func bucketUpperNS(b int) int64 {
	return int64(1)<<uint(b) - 1
}

// HistogramSnapshot is a consistent point-in-time view of a histogram.
// Count always equals the sum of Buckets, because it is derived from
// one pass over the bucket array rather than read from a separate
// counter racing with it.
type HistogramSnapshot struct {
	Name       string        `json:"name"`
	Count      int64         `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	P50        float64       `json:"p50_seconds"`
	P95        float64       `json:"p95_seconds"`
	P99        float64       `json:"p99_seconds"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket: the number of
// observations at or below LE seconds (LE < 0 encodes +Inf). Exemplar,
// when set, is the trace ID of the last sampled observation that
// landed in this bucket (not cumulative), so a slow bucket links
// directly to a concrete /debug/trace?id= lookup.
type BucketCount struct {
	LE       float64 `json:"le_seconds"`
	Count    int64   `json:"count"`
	Exemplar string  `json:"exemplar,omitempty"`
}

// Mean returns the mean observation in seconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}

// Snapshot captures the histogram's buckets, count, sum and estimated
// p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [numBuckets]int64
	var total int64
	for b := range counts {
		counts[b] = h.counts[b].Load()
		total += counts[b]
	}
	s := HistogramSnapshot{
		Name:       h.full,
		Count:      total,
		SumSeconds: float64(h.sumNS.Load()) / 1e9,
		P50:        quantile(counts[:], total, 0.50),
		P95:        quantile(counts[:], total, 0.95),
		P99:        quantile(counts[:], total, 0.99),
	}
	// Cumulative buckets, trimmed past the last occupied one; +Inf is
	// implied by Count.
	last := -1
	for b := numBuckets - 1; b >= 0; b-- {
		if counts[b] > 0 {
			last = b
			break
		}
	}
	var cum int64
	for b := 0; b <= last; b++ {
		cum += counts[b]
		le := float64(bucketUpperNS(b)) / 1e9
		if b == numBuckets-1 {
			le = -1 // +Inf
		}
		bc := BucketCount{LE: le, Count: cum}
		if ex := h.exemplars[b].Load(); ex != nil {
			bc.Exemplar = *ex
		}
		s.Buckets = append(s.Buckets, bc)
	}
	return s
}

// Exemplar returns the trace ID last recorded (via ObserveExemplar)
// for the bucket containing d, or "" when none has been recorded.
func (h *Histogram) Exemplar(d time.Duration) string {
	if h == nil {
		return ""
	}
	if ex := h.exemplars[bucketOf(d)].Load(); ex != nil {
		return *ex
	}
	return ""
}

// quantile estimates the q-quantile in seconds from a bucket-count
// array by locating the target rank's bucket and interpolating
// linearly inside it.
func quantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range counts {
		if cum+c < target {
			cum += c
			continue
		}
		var lower int64
		if b > 0 {
			lower = int64(1) << uint(b-1)
		}
		upper := bucketUpperNS(b)
		if c <= 1 {
			return float64(lower) / 1e9
		}
		frac := float64(target-cum-1) / float64(c-1)
		return (float64(lower) + frac*float64(upper-lower)) / 1e9
	}
	return float64(bucketUpperNS(numBuckets-1)) / 1e9
}
