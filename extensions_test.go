package speed

import (
	"fmt"
	"net"
	"testing"
)

// Tests for the extension features: controlled deduplication,
// oblivious lookups, sealed snapshots, and adaptive deduplication.

func TestControlledDeduplication(t *testing.T) {
	sys, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts: true,
		DenyByDefault:   true,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()

	mk := func(name string) (*App, *Deduplicable[int, int]) {
		app, err := sys.NewApp(name, []byte(name+" code"))
		if err != nil {
			t.Fatalf("NewApp: %v", err)
		}
		t.Cleanup(func() { _ = app.Close() })
		app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))
		f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
		if err != nil {
			t.Fatalf("NewDeduplicable: %v", err)
		}
		return app, f
	}

	authApp, authF := mk("authorized")
	sys.Authorize(authApp.Measurement(), true, true)
	_, strangerF := mk("stranger")

	// Authorized app populates the store.
	if got, err := authF.Call(6); err != nil || got != 36 {
		t.Fatalf("authorized Call = (%d, %v)", got, err)
	}
	if sys.StoreStats().Entries != 1 {
		t.Fatal("authorized put did not land")
	}

	// Unauthorized app computes correctly but neither reads nor
	// writes the store.
	got, outcome, err := strangerF.CallOutcome(6)
	if err != nil || got != 36 {
		t.Fatalf("stranger Call = (%d, %v)", got, err)
	}
	if outcome != OutcomeComputed {
		t.Errorf("stranger outcome = %v, want computed (no store access)", outcome)
	}
	if got := sys.StoreStats().Unauthorized; got == 0 {
		t.Error("no unauthorized accesses recorded")
	}
	if sys.StoreStats().Entries != 1 {
		t.Error("stranger modified the store")
	}

	// Revocation works.
	sys.RevokeAuthorization(authApp.Measurement())
	_, outcome, err = authF.CallOutcome(6)
	if err != nil {
		t.Fatalf("revoked Call: %v", err)
	}
	if outcome != OutcomeComputed {
		t.Errorf("revoked outcome = %v, want computed", outcome)
	}
}

func TestObliviousSystem(t *testing.T) {
	sys, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts:  true,
		ObliviousLookups: true,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	app := newTestApp(t, sys, "obl-app")
	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got, err := f.Call(i); err != nil || got != i*i {
			t.Fatalf("Call(%d) = (%d, %v)", i, got, err)
		}
	}
	for i := 0; i < 10; i++ {
		_, outcome, err := f.CallOutcome(i)
		if err != nil || outcome != OutcomeReused {
			t.Fatalf("oblivious reuse Call(%d) = (%v, %v)", i, outcome, err)
		}
	}
}

func TestSnapshotAcrossRestart(t *testing.T) {
	seed := []byte("persistent-machine")
	mkSys := func() *System {
		sys, err := NewSystemWithConfig(SystemConfig{
			DisableSGXCosts: true,
			PlatformSeed:    seed,
		})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		t.Cleanup(sys.Close)
		return sys
	}
	mkApp := func(sys *System, name string) *Deduplicable[int, int] {
		app, err := sys.NewApp(name, []byte("app code"))
		if err != nil {
			t.Fatalf("NewApp: %v", err)
		}
		t.Cleanup(func() { _ = app.Close() })
		app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))
		f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
		if err != nil {
			t.Fatalf("NewDeduplicable: %v", err)
		}
		return f
	}

	sys1 := mkSys()
	f1 := mkApp(sys1, "app")
	for i := 0; i < 5; i++ {
		if _, err := f1.Call(i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	snap, err := sys1.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}

	// "Restart": new System with the same platform seed.
	sys2 := mkSys()
	n, err := sys2.RestoreSnapshot(snap)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if n != 5 {
		t.Errorf("restored %d entries, want 5", n)
	}
	f2 := mkApp(sys2, "app")
	for i := 0; i < 5; i++ {
		_, outcome, err := f2.CallOutcome(i)
		if err != nil {
			t.Fatalf("restored Call(%d): %v", i, err)
		}
		if outcome != OutcomeReused {
			t.Errorf("Call(%d) outcome = %v, want reused from snapshot", i, outcome)
		}
	}
}

func TestSnapshotWrongSeedRejected(t *testing.T) {
	sys1, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts: true,
		PlatformSeed:    []byte("machine-A"),
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys1.Close()
	app := newTestApp(t, sys1, "a")
	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if _, err := f.Call(1); err != nil {
		t.Fatalf("Call: %v", err)
	}
	snap, err := sys1.SealSnapshot()
	if err != nil {
		t.Fatalf("SealSnapshot: %v", err)
	}

	sys2, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts: true,
		PlatformSeed:    []byte("machine-B"),
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys2.Close()
	if _, err := sys2.RestoreSnapshot(snap); err == nil {
		t.Error("snapshot restored on a different machine")
	}
}

func TestAdaptiveAppBypassesCheapFunction(t *testing.T) {
	sys := newTestSystem(t)
	app, err := sys.NewAppWithConfig("adaptive", []byte("adaptive code"), AppConfig{
		Adaptive:           true,
		AdaptiveMinSamples: 4,
		AdaptiveProbation:  1 << 20,
	})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	identity, err := NewDeduplicable(app,
		FuncDesc{Library: "mathlib", Version: "1.0", Signature: "int id(int)"},
		func(x int) (int, error) { return x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}

	// Cheap function, all-distinct inputs: zero hit rate, compute far
	// below dedup overhead. Must get bypassed.
	for i := 0; i < 40; i++ {
		if got, err := identity.Call(i); err != nil || got != i {
			t.Fatalf("Call(%d) = (%d, %v)", i, got, err)
		}
	}
	report, ok := identity.AdaptiveReport()
	if !ok {
		t.Fatal("AdaptiveReport not available on adaptive app")
	}
	if !report.Bypassed {
		t.Errorf("cheap function not bypassed: %+v", report)
	}
	// Store traffic stopped growing after the bypass.
	gets := sys.StoreStats().Gets
	for i := 100; i < 110; i++ {
		if _, err := identity.Call(i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if after := sys.StoreStats().Gets; after != gets {
		t.Errorf("bypassed calls still hit the store (%d -> %d)", gets, after)
	}
}

func TestAdaptiveReportUnavailableWithoutAdaptive(t *testing.T) {
	sys := newTestSystem(t)
	app := newTestApp(t, sys, "plain")
	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if _, ok := f.AdaptiveReport(); ok {
		t.Error("AdaptiveReport available on non-adaptive app")
	}
}

// Ensure duplicate deduplicables on one app share profiles cleanly.
func TestAdaptiveTwoFunctionsIndependent(t *testing.T) {
	sys := newTestSystem(t)
	app, err := sys.NewAppWithConfig("adaptive2", []byte("adaptive2 code"), AppConfig{
		Adaptive:           true,
		AdaptiveMinSamples: 4,
		AdaptiveProbation:  1 << 20,
	})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	cheap, err := NewDeduplicable(app,
		FuncDesc{Library: "mathlib", Version: "1.0", Signature: "cheap"},
		func(x int) (int, error) { return x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	hot, err := NewDeduplicable(app,
		FuncDesc{Library: "mathlib", Version: "1.0", Signature: "hot"},
		func(x int) (int, error) {
			// Simulate meaningful work.
			total := 0
			for i := 0; i < 2_000_000; i++ {
				total += i % (x + 2)
			}
			return total, nil
		})
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}

	for i := 0; i < 30; i++ {
		if _, err := cheap.Call(i); err != nil { // all distinct
			t.Fatalf("cheap Call: %v", err)
		}
		if _, err := hot.Call(0); err != nil { // always the same input
			t.Fatalf("hot Call: %v", err)
		}
	}
	cheapReport, _ := cheap.AdaptiveReport()
	hotReport, _ := hot.AdaptiveReport()
	if !cheapReport.Bypassed {
		t.Errorf("cheap function not bypassed: %+v", cheapReport)
	}
	if hotReport.Bypassed {
		t.Errorf("hot function wrongly bypassed: %+v", hotReport)
	}
	if hotReport.HitRate < 0.9 {
		t.Errorf("hot HitRate = %v, want ~1", hotReport.HitRate)
	}
}

// TestCrossMachineRemoteStore: the store runs on machine A; the
// application runs on machine B and connects via remote attestation —
// the paper's "master ResultStore on a dedicated server" deployment.
func TestCrossMachineRemoteStore(t *testing.T) {
	appSys, err := NewSystemWithConfig(SystemConfig{DisableSGXCosts: true})
	if err != nil {
		t.Fatalf("NewSystem app machine: %v", err)
	}
	defer appSys.Close()

	storeSys, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts: true,
		// The store machine trusts applications from the app machine.
		TrustedPlatforms: [][]byte{appSys.AttestationKey()},
	})
	if err != nil {
		t.Fatalf("NewSystem store machine: %v", err)
	}
	defer storeSys.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := storeSys.Serve(ln)
	defer srv.Close()

	app, err := appSys.NewAppWithConfig("remote-app", []byte("remote app code"), AppConfig{
		RemoteStoreAddr:        srv.Addr().String(),
		RemoteStoreMeasurement: storeSys.StoreMeasurement(),
		// The app machine trusts the store machine.
		TrustedStorePlatforms: [][]byte{storeSys.AttestationKey()},
	})
	if err != nil {
		t.Fatalf("NewAppWithConfig: %v", err)
	}
	defer app.Close()
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))

	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	if got, err := f.Call(11); err != nil || got != 121 {
		t.Fatalf("Call = (%d, %v)", got, err)
	}
	if _, outcome, err := f.CallOutcome(11); err != nil || outcome != OutcomeReused {
		t.Errorf("cross-machine reuse = (%v, %v), want reused", outcome, err)
	}
	if got := storeSys.StoreStats().Entries; got != 1 {
		t.Errorf("store machine entries = %d, want 1", got)
	}
}

// TestCrossMachineRejectedWithoutTrust: without attestation trust, an
// app on another machine cannot connect at all.
func TestCrossMachineRejectedWithoutTrust(t *testing.T) {
	appSys, err := NewSystemWithConfig(SystemConfig{DisableSGXCosts: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer appSys.Close()
	storeSys, err := NewSystemWithConfig(SystemConfig{DisableSGXCosts: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer storeSys.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := storeSys.Serve(ln)
	defer srv.Close()

	_, err = appSys.NewAppWithConfig("untrusted-app", []byte("code"), AppConfig{
		RemoteStoreAddr:        srv.Addr().String(),
		RemoteStoreMeasurement: storeSys.StoreMeasurement(),
		TrustedStorePlatforms:  [][]byte{storeSys.AttestationKey()},
		// storeSys does NOT trust appSys's platform.
	})
	if err == nil {
		t.Error("untrusted cross-machine app connected")
	}
}

func TestSystemConfigCombination(t *testing.T) {
	// All extension knobs together.
	sys, err := NewSystemWithConfig(SystemConfig{
		DisableSGXCosts:  true,
		DenyByDefault:    true,
		ObliviousLookups: true,
		PlatformSeed:     []byte("combo"),
		StoreMaxEntries:  100,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	app, err := sys.NewApp("combo-app", []byte("combo code"))
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	defer app.Close()
	sys.Authorize(app.Measurement(), true, true)
	app.RegisterLibrary("mathlib", "1.0", []byte("mathlib code"))
	f, err := NewDeduplicable(app, squareDesc, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatalf("NewDeduplicable: %v", err)
	}
	for i := 0; i < 5; i++ {
		if got, err := f.Call(3); err != nil || got != 9 {
			t.Fatalf("Call = (%d, %v)", got, err)
		}
	}
	st := app.Stats()
	if st.Reused != 4 {
		t.Errorf("Reused = %d, want 4 (authorized + oblivious path)", st.Reused)
	}
	_ = fmt.Sprintf("%v", st)
}
