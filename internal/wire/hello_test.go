package wire

import (
	"testing"
	"testing/quick"

	"speed/internal/enclave"
)

func TestHelloMarshalRoundTrip(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	e, _ := p.Create("app", []byte("code"))
	var target enclave.Measurement
	target[5] = 7

	h, err := makeHello(e, target, []byte("public key bytes here"))
	if err != nil {
		t.Fatalf("makeHello: %v", err)
	}
	got, err := parseHello(h.marshal())
	if err != nil {
		t.Fatalf("parseHello: %v", err)
	}
	if got.report != h.report {
		t.Error("report round trip mismatch")
	}
	if got.quote.Measurement != h.quote.Measurement ||
		string(got.quote.Sig) != string(h.quote.Sig) {
		t.Error("quote round trip mismatch")
	}
	// Both attestation paths verify after the round trip.
	st, _ := p.Create("target", []byte("t"))
	_ = st
	if err := enclave.VerifyQuote(got.quote, [][]byte{p.AttestationPublicKey()}); err != nil {
		t.Errorf("quote verification after round trip: %v", err)
	}
}

// Property: arbitrary byte strings never crash parseHello and are
// either rejected or parsed into a structurally valid hello.
func TestQuickParseHelloRobust(t *testing.T) {
	prop := func(b []byte) bool {
		h, err := parseHello(b)
		if err != nil {
			return true
		}
		// Parsed successfully: fields must be internally consistent
		// sizes (enforced by the unmarshal layer).
		return len(h.quote.PlatformKey) <= len(b) && len(h.quote.Sig) <= len(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseHelloRejectsTruncations(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	e, _ := p.Create("app", []byte("code"))
	h, err := makeHello(e, enclave.Measurement{}, []byte("data"))
	if err != nil {
		t.Fatalf("makeHello: %v", err)
	}
	full := h.marshal()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := parseHello(full[:cut]); err == nil {
			t.Fatalf("parseHello accepted truncation at %d", cut)
		}
	}
	// Trailing bytes rejected too.
	if _, err := parseHello(append(full, 0)); err == nil {
		t.Error("parseHello accepted trailing bytes")
	}
}
