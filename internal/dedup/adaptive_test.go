package dedup

import (
	"fmt"
	"testing"
	"time"

	"speed/internal/mle"
)

func testID(b byte) mle.FuncID {
	var id mle.FuncID
	id[0] = b
	return id
}

func TestAdvisorDefaultsDedupInitially(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{})
	if !a.ShouldDedup(testID(1)) {
		t.Error("fresh function not deduplicated by default")
	}
}

func TestAdvisorBypassesCheapFunction(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{MinSamples: 4})
	id := testID(1)
	// A function whose compute cost (10µs) is far below the dedup
	// overhead (1ms) and which never hits.
	for i := 0; i < 8; i++ {
		a.ObserveDedup(id, false, 10*time.Microsecond, time.Millisecond)
	}
	if a.ShouldDedup(id) {
		t.Error("cheap, never-hitting function still deduplicated")
	}
	if !a.Report(id).Bypassed {
		t.Error("Report does not reflect bypass")
	}
}

func TestAdvisorKeepsExpensiveFunction(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{MinSamples: 4})
	id := testID(2)
	// Expensive compute (50ms), modest overhead (1ms), 50% hit rate.
	for i := 0; i < 16; i++ {
		hit := i%2 == 0
		if hit {
			a.ObserveDedup(id, true, 0, time.Millisecond)
		} else {
			a.ObserveDedup(id, false, 50*time.Millisecond, time.Millisecond)
		}
	}
	if !a.ShouldDedup(id) {
		t.Error("expensive, hitting function was bypassed")
	}
}

func TestAdvisorZeroHitRateBypassesEvenExpensive(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{MinSamples: 4})
	id := testID(3)
	// Expensive but NEVER hits: expected benefit is zero, so dedup
	// only adds overhead.
	for i := 0; i < 8; i++ {
		a.ObserveDedup(id, false, 50*time.Millisecond, time.Millisecond)
	}
	if a.ShouldDedup(id) {
		t.Error("never-hitting function still deduplicated")
	}
}

func TestAdvisorProbationReenables(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{MinSamples: 2, Probation: 3})
	id := testID(4)
	for i := 0; i < 4; i++ {
		a.ObserveDedup(id, false, time.Microsecond, time.Millisecond)
	}
	if a.ShouldDedup(id) {
		t.Fatal("function not bypassed")
	}
	// Probation ticks down on each ShouldDedup query.
	if a.ShouldDedup(id) {
		t.Fatal("bypass lifted too early")
	}
	if !a.ShouldDedup(id) {
		t.Error("probation did not re-enable deduplication")
	}
}

func TestAdvisorMinSamplesGate(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{MinSamples: 100})
	id := testID(5)
	for i := 0; i < 10; i++ {
		a.ObserveDedup(id, false, time.Microsecond, time.Millisecond)
	}
	if !a.ShouldDedup(id) {
		t.Error("bypassed before MinSamples observations")
	}
}

func TestAdvisorReport(t *testing.T) {
	a := NewAdvisor(AdaptivePolicy{})
	id := testID(6)
	a.ObserveDedup(id, false, 2*time.Millisecond, time.Millisecond)
	a.ObserveDedup(id, true, 0, time.Millisecond)
	r := a.Report(id)
	if r.Samples != 2 {
		t.Errorf("Samples = %d, want 2", r.Samples)
	}
	if r.HitRate != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", r.HitRate)
	}
	if r.ComputeMS <= 0 || r.OverheadMS <= 0 {
		t.Errorf("EMA not populated: %+v", r)
	}
}

func TestExecuteAdaptiveEndToEnd(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	advisor := NewAdvisor(AdaptivePolicy{MinSamples: 3, Probation: 1000})

	// Phase 1: a cheap function with all-distinct inputs (no reuse
	// opportunity). After enough samples the advisor bypasses it.
	cheap := func(in []byte) ([]byte, error) { return in, nil }
	for i := 0; i < 20; i++ {
		input := []byte(fmt.Sprintf("distinct-%d", i))
		if _, _, err := env.runtime.ExecuteAdaptive(advisor, id, input, cheap); err != nil {
			t.Fatalf("ExecuteAdaptive: %v", err)
		}
	}
	if !advisor.Report(id).Bypassed {
		t.Error("cheap all-distinct function never bypassed")
	}

	// While bypassed, calls no longer touch the store.
	before := env.store.Stats().Gets
	if _, _, err := env.runtime.ExecuteAdaptive(advisor, id, []byte("more"), cheap); err != nil {
		t.Fatalf("ExecuteAdaptive: %v", err)
	}
	if after := env.store.Stats().Gets; after != before {
		t.Errorf("bypassed call still queried the store (%d -> %d)", before, after)
	}
}

func TestExecuteAdaptiveNilAdvisor(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	res, outcome, err := env.runtime.ExecuteAdaptive(nil, id, []byte("x"), func(in []byte) ([]byte, error) {
		return []byte("y"), nil
	})
	if err != nil || outcome != OutcomeComputed || string(res) != "y" {
		t.Errorf("ExecuteAdaptive(nil advisor) = (%q, %v, %v)", res, outcome, err)
	}
}

func TestExecuteAdaptiveKeepsDedupingWorthwhileFunction(t *testing.T) {
	env := newTestEnv(t, nil)
	id := env.funcID(t)
	advisor := NewAdvisor(AdaptivePolicy{MinSamples: 3})

	// A slow function called repeatedly on the SAME input: high hit
	// rate, large compute cost. Must keep deduplicating.
	slow := func(in []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond)
		return []byte("result"), nil
	}
	for i := 0; i < 12; i++ {
		if _, _, err := env.runtime.ExecuteAdaptive(advisor, id, []byte("same"), slow); err != nil {
			t.Fatalf("ExecuteAdaptive: %v", err)
		}
	}
	if advisor.Report(id).Bypassed {
		t.Error("worthwhile function was bypassed")
	}
	if got := env.runtime.Stats().Reused; got < 10 {
		t.Errorf("Reused = %d, want >= 10", got)
	}
}
