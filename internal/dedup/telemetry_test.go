package dedup

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"speed/internal/enclave"
	"speed/internal/store"
	"speed/internal/telemetry"
)

// TestTelemetryConcurrentExecute drives the runtime from many
// goroutines (run under -race in `make check`) and asserts the
// invariants the instrumentation promises: every counted call lands in
// exactly one outcome histogram, every call times its tag phase, and
// sampled traces carry non-negative, chronologically ordered phases
// bounded by the call's total latency.
func TestTelemetryConcurrentExecute(t *testing.T) {
	reg := telemetry.NewRegistry()
	env := newTestEnv(t, func(c *Config) {
		c.Telemetry = reg
		c.TraceSampleRate = 1 // trace every call
	})
	id := env.funcID(t)

	const workers = 8
	const inputs = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < inputs; i++ {
				in := []byte(fmt.Sprintf("input-%d", i))
				if _, _, err := env.runtime.Execute(id, in, func(in []byte) ([]byte, error) {
					return append([]byte("r:"), in...), nil
				}); err != nil {
					t.Errorf("Execute: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// One failing call must land in the error slot and still be counted.
	wantErr := errors.New("boom")
	if _, _, err := env.runtime.Execute(id, []byte("failing"), func([]byte) ([]byte, error) {
		return nil, wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("failing Execute = %v, want %v", err, wantErr)
	}

	calls := env.runtime.Stats().Calls
	if want := int64(workers*inputs + 1); calls != want {
		t.Fatalf("Stats.Calls = %d, want %d", calls, want)
	}

	snap := reg.Snapshot()
	var outcomeTotal int64
	for _, h := range snap.HistogramsByFamily("speed_execute_seconds") {
		outcomeTotal += h.Count
	}
	if outcomeTotal != calls {
		t.Errorf("sum of outcome histogram counts = %d, want Stats.Calls = %d", outcomeTotal, calls)
	}
	var tagCount int64 = -1
	for _, h := range snap.HistogramsByFamily("speed_execute_phase_seconds") {
		if strings.Contains(h.Name, `phase="tag"`) {
			tagCount = h.Count
		}
	}
	if tagCount != calls {
		t.Errorf("tag phase count = %d, want Stats.Calls = %d (every call derives a tag)", tagCount, calls)
	}
	if got := snap.Counter(`speed_runtime_calls_total{app="app"}`); got != calls {
		t.Errorf("speed_runtime_calls_total = %d, want %d", got, calls)
	}
	// Satellite: retries surface in the registry via the same Stats
	// snapshot rather than a side channel (zero for the local client).
	if got := snap.Counter(`speed_runtime_retries_total{app="app"}`); got != 0 {
		t.Errorf("speed_runtime_retries_total = %d, want 0", got)
	}

	events := reg.Trace().Events()
	if len(events) == 0 {
		t.Fatal("no trace events despite TraceSampleRate=1")
	}
	for _, ev := range events {
		if ev.TotalNS < 0 {
			t.Fatalf("trace %s: negative total %d", ev.ID, ev.TotalNS)
		}
		prevStart := int64(-1)
		for _, ph := range ev.Phases {
			if ph.StartNS < 0 || ph.DurNS < 0 {
				t.Fatalf("trace %s phase %s: negative timing start=%d dur=%d",
					ev.ID, ph.Name, ph.StartNS, ph.DurNS)
			}
			if ph.StartNS < prevStart {
				t.Fatalf("trace %s phase %s: start %d before previous phase start %d (not chronological)",
					ev.ID, ph.Name, ph.StartNS, prevStart)
			}
			prevStart = ph.StartNS
			if ph.StartNS+ph.DurNS > ev.TotalNS {
				t.Fatalf("trace %s phase %s: start+dur %d exceeds total %d",
					ev.ID, ph.Name, ph.StartNS+ph.DurNS, ev.TotalNS)
			}
		}
	}
}

// TestTelemetryDisabledIsInert pins the contract that a runtime built
// without a registry records nothing and allocates no telemetry state.
func TestTelemetryDisabledIsInert(t *testing.T) {
	env := newTestEnv(t, nil)
	if env.runtime.tel != nil {
		t.Fatal("runtime has telemetry state without a registry")
	}
	id := env.funcID(t)
	if _, _, err := env.runtime.Execute(id, []byte("in"), func([]byte) ([]byte, error) {
		return []byte("r"), nil
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
}

// benchEnv builds a runtime for overhead measurement. simulateCosts
// selects the denominator: true is the deployment default every figure
// uses (ECALL/OCALL spin-waits dominate); false strips the simulated
// SGX costs so the instrumentation itself is visible under the
// microscope.
func benchEnv(b *testing.B, reg *telemetry.Registry, simulateCosts bool) *Runtime {
	b.Helper()
	p := enclave.NewPlatform(enclave.Config{SimulateCosts: simulateCosts})
	appEnc, err := p.Create("bench-app", []byte("bench app code"))
	if err != nil {
		b.Fatal(err)
	}
	storeEnc, err := p.Create("bench-store", []byte("bench store code"))
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewRuntime(Config{
		Enclave:   appEnc,
		Client:    NewLocalClient(st, appEnc.Measurement()),
		Logf:      func(string, ...any) {},
		Telemetry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = rt.Close() })
	rt.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	return rt
}

// benchmarkExecuteHit measures the Algorithm 2 (subsequent
// computation) path: the store already holds the result, every
// iteration is a GET + verify + decrypt.
func benchmarkExecuteHit(b *testing.B, reg *telemetry.Registry, simulateCosts bool) {
	rt := benchEnv(b, reg, simulateCosts)
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		b.Fatal(err)
	}
	input := []byte("benchmark input")
	fn := func(in []byte) ([]byte, error) { return append([]byte("r:"), in...), nil }
	if _, out, err := rt.Execute(id, input, fn); err != nil || out != OutcomeComputed {
		b.Fatalf("seed Execute = (%v, %v)", out, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := rt.Execute(id, input, fn)
		if err != nil {
			b.Fatal(err)
		}
		if out != OutcomeReused {
			b.Fatalf("outcome = %v, want reused", out)
		}
	}
}

// The overhead gate: instrumented vs uninstrumented hit path under the
// deployment-default simulated SGX costs (the configuration every
// figure is measured in). Compare with
//
//	go test -run xxx -bench BenchmarkExecuteHit ./internal/dedup/
//
// The Raw pair strips the simulated transition costs so the absolute
// instrumentation cost (~0.5µs: eight clock reads plus a handful of
// atomic adds per call) is directly visible.
func BenchmarkExecuteHit(b *testing.B) { benchmarkExecuteHit(b, nil, true) }
func BenchmarkExecuteHitTelemetry(b *testing.B) {
	benchmarkExecuteHit(b, telemetry.NewRegistry(), true)
}
func BenchmarkExecuteHitRaw(b *testing.B) { benchmarkExecuteHit(b, nil, false) }
func BenchmarkExecuteHitRawTelemetry(b *testing.B) {
	benchmarkExecuteHit(b, telemetry.NewRegistry(), false)
}
