// Package store implements SPEED's encrypted ResultStore (Section
// IV-B): an enclave-protected metadata dictionary keyed by computation
// tag, whose entries are deliberately small (challenge, wrapped key and
// a pointer), with the bulk result ciphertexts kept outside the enclave
// for EPC efficiency. The package also provides per-application quotas
// (the paper's DoS rate-limiting strategy), LRU eviction, a TCP server
// speaking the wire protocol, and master-store replication.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// BlobID identifies a ciphertext blob in untrusted storage.
type BlobID uint64

// BlobStore is the untrusted storage that holds result ciphertexts
// outside the enclave. Implementations need not protect the data:
// everything stored is AEAD ciphertext, and integrity violations are
// caught by the application-side verification protocol (Fig. 3).
type BlobStore interface {
	// Put stores a blob and returns its identifier.
	Put(data []byte) (BlobID, error)
	// Get retrieves a blob by identifier.
	Get(id BlobID) ([]byte, error)
	// Delete removes a blob; deleting an unknown identifier is a no-op.
	Delete(id BlobID) error
	// Bytes reports the total stored payload size.
	Bytes() int64
}

// MemBlobStore is an in-memory BlobStore.
type MemBlobStore struct {
	mu     sync.Mutex
	blobs  map[BlobID][]byte
	nextID BlobID
	bytes  int64
}

var _ BlobStore = (*MemBlobStore)(nil)

// NewMemBlobStore creates an empty in-memory blob store.
func NewMemBlobStore() *MemBlobStore {
	return &MemBlobStore{blobs: make(map[BlobID][]byte)}
}

// Put implements BlobStore.
func (s *MemBlobStore) Put(data []byte) (BlobID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	cp := make([]byte, len(data))
	copy(cp, data)
	s.blobs[id] = cp
	s.bytes += int64(len(cp))
	return id, nil
}

// Get implements BlobStore.
func (s *MemBlobStore) Get(id BlobID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[id]
	if !ok {
		return nil, fmt.Errorf("store: blob %d not found", id)
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, nil
}

// Delete implements BlobStore.
func (s *MemBlobStore) Delete(id BlobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[id]; ok {
		s.bytes -= int64(len(b))
		delete(s.blobs, id)
	}
	return nil
}

// Bytes implements BlobStore.
func (s *MemBlobStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// DiskBlobStore stores each blob as a file under a directory, modelling
// the persistent untrusted storage of a long-running ResultStore.
type DiskBlobStore struct {
	dir string

	mu     sync.Mutex
	nextID BlobID
	sizes  map[BlobID]int64
	bytes  int64
}

var _ BlobStore = (*DiskBlobStore)(nil)

// NewDiskBlobStore creates (or reuses) dir as blob storage.
func NewDiskBlobStore(dir string) (*DiskBlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create blob dir: %w", err)
	}
	return &DiskBlobStore{dir: dir, sizes: make(map[BlobID]int64)}, nil
}

func (s *DiskBlobStore) path(id BlobID) string {
	return filepath.Join(s.dir, strconv.FormatUint(uint64(id), 16)+".blob")
}

// Put implements BlobStore.
func (s *DiskBlobStore) Put(data []byte) (BlobID, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	if err := writeFileSync(s.path(id), data, 0o644); err != nil {
		return 0, fmt.Errorf("store: write blob: %w", err)
	}
	s.mu.Lock()
	s.sizes[id] = int64(len(data))
	s.bytes += int64(len(data))
	s.mu.Unlock()
	return id, nil
}

// Get implements BlobStore.
func (s *DiskBlobStore) Get(id BlobID) ([]byte, error) {
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("store: read blob %d: %w", id, err)
	}
	return data, nil
}

// Delete implements BlobStore.
func (s *DiskBlobStore) Delete(id BlobID) error {
	s.mu.Lock()
	if sz, ok := s.sizes[id]; ok {
		s.bytes -= sz
		delete(s.sizes, id)
	}
	s.mu.Unlock()
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete blob %d: %w", id, err)
	}
	return nil
}

// Bytes implements BlobStore.
func (s *DiskBlobStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
