package bench

import (
	"fmt"
	"time"

	"speed/internal/dedup"
	"speed/internal/mle"
)

// AdaptiveRow is one strategy's total wall-clock time over the mixed
// workload of AblationAdaptive.
type AdaptiveRow struct {
	Strategy string
	TotalMS  float64
	Computed int64
	Reused   int64
}

// AblationAdaptive evaluates the adaptive deduplication strategy (the
// paper's future-work extension) on a mixed workload designed to
// defeat both static policies:
//
//   - a CHEAP function called on all-distinct inputs (deduplication
//     pure overhead), and
//   - an EXPENSIVE function called repeatedly on few inputs
//     (deduplication a large win).
//
// Three strategies run the identical call sequence: always-dedup
// (SPEED as published), never-dedup (plain enclave execution), and
// adaptive (the advisor decides per function). Adaptive should
// approach the best of both on their respective halves.
func AblationAdaptive(calls int, trials int) ([]AdaptiveRow, error) {
	if calls <= 0 {
		calls = 300
	}
	expensiveWork := func() {
		// ~1ms of deterministic work.
		deadline := time.Now().Add(time.Millisecond)
		for time.Now().Before(deadline) {
		}
	}

	runStrategy := func(name string, mode int) (AdaptiveRow, error) {
		e, err := newEnv(true)
		if err != nil {
			return AdaptiveRow{}, err
		}
		defer e.close()
		var advisor *dedup.Advisor
		if mode == 2 {
			advisor = dedup.NewAdvisor(dedup.AdaptivePolicy{MinSamples: 8})
		}

		var cheapID, hotID mle.FuncID
		cheapID[0], hotID[0] = 1, 2

		cheap := func(in []byte) ([]byte, error) { return in, nil }
		hot := func(in []byte) ([]byte, error) {
			expensiveWork()
			return append([]byte("r"), in...), nil
		}

		exec := func(id mle.FuncID, input []byte, fn func([]byte) ([]byte, error)) error {
			switch mode {
			case 0: // always dedup
				_, _, err := e.runtime.Execute(id, input, fn)
				return err
			case 1: // never dedup
				return e.appEnc.ECall(func() error {
					_, ferr := fn(input)
					return ferr
				})
			default: // adaptive
				_, _, err := e.runtime.ExecuteAdaptive(advisor, id, input, fn)
				return err
			}
		}

		t, err := timeIt(trials, func() error {
			for i := 0; i < calls; i++ {
				// Interleave: cheap on distinct inputs, hot on one of
				// 4 popular inputs.
				if err := exec(cheapID, []byte(fmt.Sprintf("distinct-%d-%d", i, time.Now().UnixNano())), cheap); err != nil {
					return err
				}
				if err := exec(hotID, []byte(fmt.Sprintf("popular-%d", i%4)), hot); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return AdaptiveRow{}, err
		}
		st := e.runtime.Stats()
		return AdaptiveRow{
			Strategy: name,
			TotalMS:  ms(t),
			Computed: st.Computed,
			Reused:   st.Reused,
		}, nil
	}

	var rows []AdaptiveRow
	for _, s := range []struct {
		name string
		mode int
	}{
		{"always-dedup", 0},
		{"never-dedup", 1},
		{"adaptive", 2},
	} {
		row, err := runStrategy(s.name, s.mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblationAdaptive formats the strategy comparison.
func RenderAblationAdaptive(rows []AdaptiveRow, calls int) string {
	s := fmt.Sprintf("Ablation: adaptive deduplication strategy (%d mixed calls per trial)\n", calls)
	s += fmt.Sprintf("%-14s %12s %10s %10s\n", "Strategy", "total(ms)", "computed", "reused")
	for _, r := range rows {
		s += fmt.Sprintf("%-14s %12.1f %10d %10d\n", r.Strategy, r.TotalMS, r.Computed, r.Reused)
	}
	return s
}
