package wire

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Distributed-trace context propagation. A trace context (16-byte trace
// ID, 8-byte parent span ID) rides inside protocol-v2 envelopes as an
// optional field so a sampled Execute can be followed across the dedup
// runtime, the cluster router and every store node it touches. The
// capability is negotiated in the attested hello (feature byte 33 of
// the key-exchange data, covered by the report MAC like the version
// byte): v2 peers that predate it leave the byte zero and the envelope
// format stays exactly PR 3's, so they interoperate unchanged.
//
// Trust boundary: the context travels outside the MLE-sealed result
// payload but inside the channel AEAD — the network sees nothing, the
// peer enclave sees (and must be able to see) the IDs, and the sealed
// deduplication payload never depends on them.

// Feature is a bitmask of optional channel capabilities negotiated in
// the attested hello alongside the protocol version. The effective set
// is the intersection of both peers' offers; peers predating the
// feature byte offer nothing.
type Feature uint8

const (
	// FeatureTrace enables the optional trace-context field in v2
	// envelopes.
	FeatureTrace Feature = 1 << 0

	// FeatureChunking advertises chunked-dedup support: the peer
	// understands the HAS_BATCH existence probe used for missing-chunk
	// transfer. Manifests and sealed chunks themselves travel in the
	// ordinary GET/PUT messages and need no capability.
	FeatureChunking Feature = 1 << 1

	// DefaultFeatures is what handshakes offer unless pinned down for
	// compatibility testing or conservative rollouts.
	DefaultFeatures = FeatureTrace | FeatureChunking
)

// TraceContext is the wire form of one request's position in a
// distributed trace. The zero value means "not sampled": no context is
// carried on the wire and the request costs nothing to trace
// machinery.
type TraceContext struct {
	// ID is the 16-byte trace ID shared by every span of the trace.
	ID [16]byte
	// Parent is the span ID of the sender's span, which receivers use
	// as the ParentID of the spans they record.
	Parent uint64
	// Sampled marks the context as live; only sampled contexts are
	// encoded.
	Sampled bool
}

// Valid reports whether the context is a live sampled trace that
// should be propagated and recorded.
func (tc TraceContext) Valid() bool { return tc.Sampled && tc.ID != ([16]byte{}) }

// TraceIDHex returns the hex form of the trace ID used as the
// telemetry TraceID and the /debug/trace?id= key.
func (tc TraceContext) TraceIDHex() string { return hex.EncodeToString(tc.ID[:]) }

// SpanIDHex formats a span ID the way telemetry records it.
func SpanIDHex(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a random 16-byte trace ID. It is called once per
// sampled request, never on the unsampled hot path.
func NewTraceID() [16]byte {
	var id [16]byte
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand failure is unrecoverable for key material but a
		// trace ID only needs uniqueness; fall back to the span
		// sequence.
		binary.BigEndian.PutUint64(id[:8], NewSpanID())
		binary.BigEndian.PutUint64(id[8:], NewSpanID())
	}
	return id
}

// spanSeq seeds span IDs with process-random state so IDs from
// different nodes do not collide; each NewSpanID advances it by a
// 64-bit odd constant (full-period, so high bits churn too).
var spanSeq = func() *atomic.Uint64 {
	var v atomic.Uint64
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		v.Store(binary.BigEndian.Uint64(b[:]))
	}
	return &v
}()

// NewSpanID returns a process-unique nonzero span ID (zero is reserved
// for "no parent").
func NewSpanID() uint64 {
	for {
		if id := spanSeq.Add(0x9e3779b97f4a7c15); id != 0 {
			return id
		}
	}
}

// Traced-envelope layout, used only on channels that negotiated
// FeatureTrace: the 8-byte request ID, a flags byte, and — when the
// trace flag is set — the 16-byte trace ID and 8-byte parent span ID,
// followed by the marshalled message. Unsampled envelopes cost one
// flags byte over the plain v2 form and encode/decode with zero
// allocations.
const (
	envFlagTrace = 1 << 0

	tracedHeaderLen   = envelopeHeaderLen + 1
	traceContextLen   = 16 + 8
	tracedEnvelopeMax = tracedHeaderLen + traceContextLen
)

// MarshalEnvelopeTrace serialises a traced v2 message frame. The
// context is carried only when tc.Valid().
func MarshalEnvelopeTrace(id uint64, tc TraceContext, m Message) []byte {
	return AppendEnvelopeTrace(make([]byte, 0, tracedEnvelopeMax+64), id, tc, m)
}

// AppendEnvelopeTrace serialises a traced v2 message frame into buf,
// returning the extended slice. Channel.SendEnvelopeTrace uses it with
// the channel's marshal scratch, so unsampled framing allocates
// nothing in steady state.
func AppendEnvelopeTrace(buf []byte, id uint64, tc TraceContext, m Message) []byte {
	buf = binary.BigEndian.AppendUint64(buf, id)
	if tc.Valid() {
		buf = append(buf, envFlagTrace)
		buf = append(buf, tc.ID[:]...)
		buf = binary.BigEndian.AppendUint64(buf, tc.Parent)
	} else {
		buf = append(buf, 0)
	}
	return AppendMarshal(buf, m)
}

// SplitEnvelopeTrace splits a traced v2 frame into its request ID,
// trace context and raw message bytes without decoding the message.
// The returned slice aliases b. Unknown flag bits are rejected:
// features are pairwise-negotiated, so an unexpected bit is
// corruption, not a newer peer. The split itself performs no
// allocations, which is what keeps the unsampled decode path free.
func SplitEnvelopeTrace(b []byte) (uint64, TraceContext, []byte, error) {
	if len(b) < tracedHeaderLen {
		return 0, TraceContext{}, nil, fmt.Errorf("%w: short traced envelope (%d bytes)", ErrMalformed, len(b))
	}
	id := binary.BigEndian.Uint64(b)
	flags := b[envelopeHeaderLen]
	rest := b[tracedHeaderLen:]
	var tc TraceContext
	if flags&^byte(envFlagTrace) != 0 {
		return 0, TraceContext{}, nil, fmt.Errorf("%w: unknown envelope flags %#x", ErrMalformed, flags)
	}
	if flags&envFlagTrace != 0 {
		if len(rest) < traceContextLen {
			return 0, TraceContext{}, nil, fmt.Errorf("%w: short trace context (%d bytes)", ErrMalformed, len(rest))
		}
		copy(tc.ID[:], rest[:16])
		tc.Parent = binary.BigEndian.Uint64(rest[16:])
		tc.Sampled = true
		rest = rest[traceContextLen:]
	}
	return id, tc, rest, nil
}

// UnmarshalEnvelopeTrace parses a traced v2 message frame produced by
// MarshalEnvelopeTrace/AppendEnvelopeTrace.
func UnmarshalEnvelopeTrace(b []byte) (uint64, TraceContext, Message, error) {
	id, tc, rest, err := SplitEnvelopeTrace(b)
	if err != nil {
		return 0, TraceContext{}, nil, err
	}
	m, err := Unmarshal(rest)
	if err != nil {
		return 0, TraceContext{}, nil, err
	}
	return id, tc, m, nil
}
