module speed

go 1.22
