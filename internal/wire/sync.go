package wire

import (
	"encoding/binary"
	"fmt"

	"speed/internal/mle"
)

// Sync messages implement the master-store synchronization of Section
// IV-B over the wire: "periodically synchronizes the popular (i.e.,
// frequently appeared) results from different machines". A SYNC_PULL
// asks a store for its hot entries — tags hit at least MinHits times —
// and the response carries everything needed to install each result at
// another store (the tag and the sealed (r, [k], [res]) triple; hit
// counts ride along so the puller can rank entries). The dictionary
// metadata never leaves the attested channel in the clear, exactly as
// for GET/PUT.

// SyncPullRequest asks the store for entries with at least MinHits
// hits. Max bounds the response; zero (or anything above MaxBatchItems)
// means MaxBatchItems.
type SyncPullRequest struct {
	MinHits int64
	Max     uint32
}

// SyncEntry is one hot result in a SyncPullResponse.
type SyncEntry struct {
	Tag    mle.Tag
	Hits   int64
	Sealed mle.Sealed
}

// SyncPullResponse answers a SyncPullRequest with the store's hottest
// qualifying entries, most frequently hit first.
type SyncPullResponse struct {
	Entries []SyncEntry
}

// Kind implements Message.
func (SyncPullRequest) Kind() Kind { return KindSyncPullRequest }

// Kind implements Message.
func (SyncPullResponse) Kind() Kind { return KindSyncPullResponse }

func (m SyncPullRequest) appendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.MinHits))
	return binary.BigEndian.AppendUint32(buf, m.Max)
}

func decodeSyncPullRequest(b []byte) (SyncPullRequest, error) {
	var m SyncPullRequest
	if len(b) != 12 {
		return m, fmt.Errorf("%w: SYNC_PULL_REQUEST length %d", ErrMalformed, len(b))
	}
	m.MinHits = int64(binary.BigEndian.Uint64(b))
	m.Max = binary.BigEndian.Uint32(b[8:])
	return m, nil
}

func (m SyncPullResponse) appendTo(buf []byte) []byte {
	buf = appendCount(buf, len(m.Entries))
	for _, e := range m.Entries {
		buf = append(buf, e.Tag[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.Hits))
		buf = appendSealed(buf, e.Sealed)
	}
	return buf
}

func decodeSyncPullResponse(b []byte) (SyncPullResponse, error) {
	var m SyncPullResponse
	n, b, err := readCount(b, "SYNC_PULL_RESPONSE")
	if err != nil {
		return m, err
	}
	m.Entries = make([]SyncEntry, n)
	for i := range m.Entries {
		if len(b) < mle.TagSize+8 {
			return SyncPullResponse{}, fmt.Errorf("%w: short SYNC_PULL_RESPONSE entry", ErrMalformed)
		}
		copy(m.Entries[i].Tag[:], b[:mle.TagSize])
		b = b[mle.TagSize:]
		m.Entries[i].Hits = int64(binary.BigEndian.Uint64(b))
		b = b[8:]
		if m.Entries[i].Sealed, b, err = readSealed(b); err != nil {
			return SyncPullResponse{}, err
		}
	}
	if len(b) != 0 {
		return SyncPullResponse{}, fmt.Errorf("%w: trailing bytes in SYNC_PULL_RESPONSE", ErrMalformed)
	}
	return m, nil
}
