package speed

import (
	"fmt"

	"speed/internal/mle"
)

// Deduplicable wraps a deterministic function so that calls to it are
// transparently deduplicated through SPEED, mirroring the C++
// Deduplicable template of the prototype (Section IV-C). Creating the
// wrapper and calling it are the paper's "2 lines of code per function
// call":
//
//	d, err := speed.NewDeduplicable(app, desc, fn, opts...)
//	out, err := d.Call(in)
type Deduplicable[I, O any] struct {
	app *App
	id  mle.FuncID
	fn  func(I) (O, error)
	in  Codec[I]
	out Codec[O]
}

// DedupOption configures a Deduplicable at construction.
type DedupOption[I, O any] func(*Deduplicable[I, O])

// WithInputCodec sets the input serialisation; the default is
// GobCodec[I].
func WithInputCodec[I, O any](c Codec[I]) DedupOption[I, O] {
	return func(d *Deduplicable[I, O]) { d.in = c }
}

// WithOutputCodec sets the output serialisation; the default is
// GobCodec[O].
func WithOutputCodec[I, O any](c Codec[O]) DedupOption[I, O] {
	return func(d *Deduplicable[I, O]) { d.out = c }
}

// NewDeduplicable makes fn deduplicable under the given function
// description. The description's library must have been registered at
// the application with RegisterLibrary, proving the application owns
// the function's code; otherwise construction fails.
func NewDeduplicable[I, O any](app *App, desc FuncDesc, fn func(I) (O, error), opts ...DedupOption[I, O]) (*Deduplicable[I, O], error) {
	if fn == nil {
		return nil, fmt.Errorf("speed: nil function for %v", desc)
	}
	id, err := app.runtime.Resolve(desc)
	if err != nil {
		return nil, err
	}
	d := &Deduplicable[I, O]{
		app: app,
		id:  id,
		fn:  fn,
		in:  GobCodec[I]{},
		out: GobCodec[O]{},
	}
	for _, opt := range opts {
		opt(d)
	}
	return d, nil
}

// AdaptiveReport is a snapshot of the adaptive profiler's view of one
// deduplicable function.
type AdaptiveReport struct {
	// ComputeMS and OverheadMS are moving-average estimates of the
	// function's compute cost and the dedup-path overhead.
	ComputeMS, OverheadMS float64
	// HitRate is the observed store hit rate.
	HitRate float64
	// Samples counts observed deduplicated calls.
	Samples int
	// Bypassed reports whether deduplication is currently bypassed
	// for this function.
	Bypassed bool
}

// AdaptiveReport returns the adaptive profile of this function. ok is
// false when the application was not created with AppConfig.Adaptive.
func (d *Deduplicable[I, O]) AdaptiveReport() (AdaptiveReport, bool) {
	if d.app.advisor == nil {
		return AdaptiveReport{}, false
	}
	r := d.app.advisor.Report(d.id)
	return AdaptiveReport{
		ComputeMS:  r.ComputeMS,
		OverheadMS: r.OverheadMS,
		HitRate:    r.HitRate,
		Samples:    r.Samples,
		Bypassed:   r.Bypassed,
	}, true
}

// Call invokes the wrapped function with deduplication and returns its
// result.
func (d *Deduplicable[I, O]) Call(in I) (O, error) {
	out, _, err := d.CallOutcome(in)
	return out, err
}

// BatchCallResult is one input's result from CallBatch. Err is
// per-item: one failed input does not poison its batch siblings.
type BatchCallResult[O any] struct {
	Out     O
	Outcome Outcome
	Err     error
}

// CallBatch invokes the wrapped function over many inputs with
// deduplication, aligned positionally with the returned results. The
// whole batch enters the enclave once, consults the store with one
// batched GET/PUT exchange, and computes misses in parallel, so small
// computations pay the enclave-transition and store round-trip costs
// once per batch rather than once per call. Duplicate inputs within
// the batch are computed once and shared. Unlike Call, the batch path
// does not consult the adaptive bypass advisor: the caller opting into
// batching has already declared the calls dedup-worthy.
func (d *Deduplicable[I, O]) CallBatch(ins []I) ([]BatchCallResult[O], error) {
	if len(ins) == 0 {
		return nil, nil
	}
	inBytes := make([][]byte, len(ins))
	for i := range ins {
		b, err := d.in.Encode(ins[i])
		if err != nil {
			return nil, fmt.Errorf("speed: encode input %d: %w", i, err)
		}
		inBytes[i] = b
	}
	raws, err := d.app.runtime.ExecuteBatch(d.id, inBytes, func(raw []byte) ([]byte, error) {
		v, derr := d.in.Decode(raw)
		if derr != nil {
			return nil, fmt.Errorf("speed: decode input: %w", derr)
		}
		out, ferr := d.fn(v)
		if ferr != nil {
			return nil, ferr
		}
		return d.out.Encode(out)
	})
	if err != nil {
		return nil, err
	}
	results := make([]BatchCallResult[O], len(ins))
	for i, r := range raws {
		if r.Err != nil {
			results[i].Err = r.Err
			continue
		}
		out, derr := d.out.Decode(r.Result)
		if derr != nil {
			results[i].Err = fmt.Errorf("speed: decode result: %w", derr)
			continue
		}
		results[i] = BatchCallResult[O]{Out: out, Outcome: r.Outcome}
	}
	return results, nil
}

// CallOutcome is Call, additionally reporting whether the result was
// freshly computed or reused from the store.
func (d *Deduplicable[I, O]) CallOutcome(in I) (O, Outcome, error) {
	var zero O
	inBytes, err := d.in.Encode(in)
	if err != nil {
		return zero, 0, fmt.Errorf("speed: encode input: %w", err)
	}
	resBytes, outcome, err := d.app.runtime.ExecuteAdaptive(d.app.advisor, d.id, inBytes, func(raw []byte) ([]byte, error) {
		// raw == inBytes by construction; decode back so the wrapped
		// function sees its native type even when the runtime replays
		// the computation.
		v, derr := d.in.Decode(raw)
		if derr != nil {
			return nil, fmt.Errorf("speed: decode input: %w", derr)
		}
		out, ferr := d.fn(v)
		if ferr != nil {
			return nil, ferr
		}
		return d.out.Encode(out)
	})
	if err != nil {
		return zero, 0, err
	}
	out, err := d.out.Decode(resBytes)
	if err != nil {
		return zero, 0, fmt.Errorf("speed: decode result: %w", err)
	}
	return out, outcome, nil
}
