// Imagefeatures: the Case 1 scenario — an image service extracting
// SIFT keypoints. Incremental batches overlap heavily with previously
// processed images (re-uploads, thumbnails regenerated), so feature
// extraction deduplicates well. Demonstrates a custom Codec pair
// (image encoder in, keypoint encoder out).
package main

import (
	"fmt"
	"os"
	"time"

	"speed"
	"speed/internal/sift"
	"speed/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imagefeatures:", err)
		os.Exit(1)
	}
}

// imageCodec serialises *sift.Gray deterministically for tagging.
type imageCodec struct{}

func (imageCodec) Encode(img *sift.Gray) ([]byte, error) { return sift.EncodeGray(img), nil }
func (imageCodec) Decode(b []byte) (*sift.Gray, error)   { return sift.DecodeGray(b) }

// keypointCodec serialises the extraction result.
type keypointCodec struct{}

func (keypointCodec) Encode(kps []sift.Keypoint) ([]byte, error) {
	return sift.EncodeKeypoints(kps), nil
}
func (keypointCodec) Decode(b []byte) ([]sift.Keypoint, error) {
	return sift.DecodeKeypoints(b)
}

func run() error {
	sys, err := speed.NewSystem()
	if err != nil {
		return err
	}
	defer sys.Close()

	app, err := sys.NewApp("image-service", []byte("image service v3"))
	if err != nil {
		return err
	}
	defer app.Close()
	app.RegisterLibrary("libsiftpp", "0.8.1", []byte("libsiftpp code"))

	extract, err := speed.NewDeduplicable(app,
		speed.FuncDesc{Library: "libsiftpp", Version: "0.8.1", Signature: "keypoints sift(image)"},
		func(img *sift.Gray) ([]sift.Keypoint, error) {
			return sift.Detect(img, sift.DefaultParams()), nil
		},
		speed.WithInputCodec[*sift.Gray, []sift.Keypoint](imageCodec{}),
		speed.WithOutputCodec[*sift.Gray, []sift.Keypoint](keypointCodec{}),
	)
	if err != nil {
		return err
	}

	// Two "daily batches" with 60% image overlap: the second batch
	// reuses extraction results for images already processed.
	gen := workload.New(11)
	pool := make([]*sift.Gray, 10)
	for i := range pool {
		pool[i] = gen.Image(160, 160)
	}
	batch1 := pool[:6]
	batch2 := pool[2:] // images 2..5 overlap with batch 1

	processBatch := func(name string, batch []*sift.Gray) error {
		fmt.Printf("%s (%d images)\n", name, len(batch))
		start := time.Now()
		for i, img := range batch {
			t := time.Now()
			kps, outcome, err := extract.CallOutcome(img)
			if err != nil {
				return err
			}
			fmt.Printf("  image %d: %3d keypoints  %-8v  %v\n",
				i, len(kps), outcome, time.Since(t).Round(100*time.Microsecond))
		}
		fmt.Printf("  batch total: %v\n\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := processBatch("batch 1", batch1); err != nil {
		return err
	}
	if err := processBatch("batch 2 (overlaps batch 1)", batch2); err != nil {
		return err
	}

	st := app.Stats()
	fmt.Printf("stats: %d calls, %d computed, %d reused, %d bytes of results served from store\n",
		st.Calls, st.Computed, st.Reused, st.BytesReused)
	return nil
}
