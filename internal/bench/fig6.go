package bench

import (
	"fmt"
	"runtime"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// Fig6Row is one x-position of Fig. 6: the time to process 100
// GET_REQUESTs and 100 PUT_REQUESTs at the ResultStore for results of
// one size, with all-distinct incoming data.
type Fig6Row struct {
	// SizeBytes is the result ciphertext size.
	SizeBytes int
	// Get100MS and Put100MS are the total times for 100 operations.
	Get100MS, Put100MS float64
}

// DefaultFig6Sizes are the paper's sizes: 1 KB to 1 MB.
var DefaultFig6Sizes = []int{1 << 10, 10 << 10, 100 << 10, 1 << 20}

// Fig6 measures ResultStore throughput, averaging over trials runs of
// 100 operations each. withSGX true runs the store enclave with
// simulated transition costs (the paper's "with SGX" lines); false
// disables them (the "w/o SGX" lines).
func Fig6(sizes []int, withSGX bool, trials int) ([]Fig6Row, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig6Sizes
	}
	if trials < 1 {
		trials = 1
	}
	const ops = 100
	rows := make([]Fig6Row, 0, len(sizes))
	for _, size := range sizes {
		platform := enclave.NewPlatform(enclave.Config{SimulateCosts: withSGX})
		storeEnc, err := platform.Create("fig6-store", []byte("store code"))
		if err != nil {
			return nil, err
		}
		// Cap the store at 2x the working set so repeated trials evict
		// old entries and process memory stays flat (unbounded growth
		// distorts large-size timings with allocator effects).
		st, err := store.New(store.Config{Enclave: storeEnc, MaxEntries: 2 * ops})
		if err != nil {
			return nil, err
		}
		var owner enclave.Measurement
		owner[0] = 1

		// Prepare trials*ops distinct sealed results of the target
		// size (all-distinct incoming data, as in the paper).
		blob := randBytes(size)
		mkSealed := func() mle.Sealed {
			return mle.Sealed{
				Challenge:  randBytes(mle.ChallengeSize),
				WrappedKey: randBytes(mle.KeySize),
				Blob:       blob,
			}
		}
		mkTag := func(trial, i int) mle.Tag {
			var t mle.Tag
			t[0], t[1], t[2] = byte(i), byte(i>>8), byte(trial)
			return t
		}

		// Untimed warmup pass: faults in OS pages for the blob heap so
		// the first timed trial is not penalized relative to later
		// configurations measured in the same process.
		for i := 0; i < ops; i++ {
			if _, err := st.Put(owner, mkTag(255, i), mkSealed()); err != nil {
				return nil, err
			}
			if _, _, err := st.Get(mkTag(255, i)); err != nil {
				return nil, err
			}
		}

		runtime.GC()
		trial := 0
		putT, err := medianTimeIt(trials, func() error {
			trial++
			for i := 0; i < ops; i++ {
				if _, err := st.Put(owner, mkTag(trial, i), mkSealed()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		runtime.GC()
		// Eviction keeps only the most recent trials resident, so GET
		// trials all read the last PUT trial's entries.
		lastTrial := trial
		getT, err := medianTimeIt(trials, func() error {
			for i := 0; i < ops; i++ {
				_, found, err := st.Get(mkTag(lastTrial, i))
				if err != nil {
					return err
				}
				if !found {
					return fmt.Errorf("bench: tag %d missing", i)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		st.Close()
		rows = append(rows, Fig6Row{
			SizeBytes: size,
			Get100MS:  ms(getT),
			Put100MS:  ms(putT),
		})
	}
	return rows, nil
}

// RenderFig6 formats the with/without-SGX row pairs like Fig. 6.
func RenderFig6(withSGX, withoutSGX []Fig6Row) string {
	s := "Fig. 6: time of 100 GET/PUT operations at ResultStore\n"
	s += fmt.Sprintf("%-10s %14s %14s %16s %16s\n",
		"Size(KB)", "GET sgx(ms)", "PUT sgx(ms)", "GET no-sgx(ms)", "PUT no-sgx(ms)")
	for i := range withSGX {
		var g2, p2 float64
		if i < len(withoutSGX) {
			g2, p2 = withoutSGX[i].Get100MS, withoutSGX[i].Put100MS
		}
		s += fmt.Sprintf("%-10d %14.2f %14.2f %16.2f %16.2f\n",
			withSGX[i].SizeBytes/1024, withSGX[i].Get100MS, withSGX[i].Put100MS, g2, p2)
	}
	return s
}
