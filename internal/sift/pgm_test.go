package sift

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	img := blobImage(33, 17, [][2]int{{16, 8}}, 4)
	var buf bytes.Buffer
	if err := WritePGM(&buf, img); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if got.W != img.W || got.H != img.H {
		t.Fatalf("size = %dx%d, want %dx%d", got.W, got.H, img.W, img.H)
	}
	// 8-bit quantization: pixels within 1/255.
	for i := range img.Pix {
		if math.Abs(float64(got.Pix[i]-img.Pix[i])) > 1.0/255+1e-6 {
			t.Fatalf("pixel %d = %v, want ~%v", i, got.Pix[i], img.Pix[i])
		}
	}
}

func TestReadPGMAscii(t *testing.T) {
	src := `P2
# an ascii graymap
3 2
255
0 128 255
255 128 0
`
	img, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if img.W != 3 || img.H != 2 {
		t.Fatalf("size = %dx%d", img.W, img.H)
	}
	if img.At(0, 0) != 0 || img.At(2, 0) != 1 {
		t.Errorf("corner pixels = %v, %v", img.At(0, 0), img.At(2, 0))
	}
	if math.Abs(float64(img.At(1, 0))-128.0/255) > 1e-6 {
		t.Errorf("mid pixel = %v", img.At(1, 0))
	}
}

func TestReadPGM16Bit(t *testing.T) {
	// P5 with maxval > 255 uses two bytes per pixel, big-endian.
	var buf bytes.Buffer
	buf.WriteString("P5\n2 1\n65535\n")
	buf.Write([]byte{0x00, 0x00, 0xFF, 0xFF})
	img, err := ReadPGM(&buf)
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if img.At(0, 0) != 0 || img.At(1, 0) != 1 {
		t.Errorf("pixels = %v, %v", img.At(0, 0), img.At(1, 0))
	}
}

func TestReadPGMComments(t *testing.T) {
	src := "P5 # binary\n# comment line\n2 # width\n1\n255\nAB"
	img, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if img.W != 2 || img.H != 1 {
		t.Errorf("size = %dx%d", img.W, img.H)
	}
}

func TestReadPGMRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad magic":       "P7\n2 2\n255\nAAAA",
		"negative width":  "P5\n-2 2\n255\nAAAA",
		"huge dims":       "P5\n99999999 2\n255\n",
		"bad maxval":      "P5\n2 2\n0\nAAAA",
		"short pixels":    "P5\n4 4\n255\nAB",
		"non-numeric dim": "P5\nxx 2\n255\nAAAA",
	}
	for name, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ReadPGM accepted malformed input", name)
		}
	}
}

func TestWritePGMClampsRange(t *testing.T) {
	img := NewGray(2, 1)
	img.Pix[0] = -0.5
	img.Pix[1] = 1.5
	var buf bytes.Buffer
	if err := WritePGM(&buf, img); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if got.Pix[0] != 0 || got.Pix[1] != 1 {
		t.Errorf("clamped pixels = %v, %v", got.Pix[0], got.Pix[1])
	}
}
