// Package workload generates deterministic synthetic inputs for the
// four evaluation cases, replacing the paper's external datasets
// (Internet images, Boost text files, m57/4SICS packet traces with
// Snort rules, CommonCrawl web pages) which are not available in this
// environment. Generators are seeded, so every experiment is exactly
// reproducible, and a Zipf-based duplication controller produces input
// streams with a configurable repeat rate — the knob that computation
// deduplication exploits.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"speed/internal/pattern"
	"speed/internal/sift"
)

// Source is a seeded generator. It is NOT safe for concurrent use;
// create one per goroutine.
type Source struct {
	rng *rand.Rand
}

// New creates a Source with the given seed. Equal seeds produce equal
// streams.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Image produces a w×h grayscale test image with smooth blob and wave
// textures, the kind of structured content SIFT finds keypoints in.
func (s *Source) Image(w, h int) *sift.Gray {
	img := sift.NewGray(w, h)
	// Random Gaussian blobs.
	nBlobs := 3 + s.rng.Intn(6)
	type blob struct {
		cx, cy, sigma, amp float64
	}
	blobs := make([]blob, nBlobs)
	for i := range blobs {
		blobs[i] = blob{
			cx:    s.rng.Float64() * float64(w),
			cy:    s.rng.Float64() * float64(h),
			sigma: 2 + s.rng.Float64()*float64(minInt(w, h))/8,
			amp:   0.3 + s.rng.Float64()*0.7,
		}
	}
	// Two random plane waves for texture.
	fx1, fy1 := s.rng.Float64()*0.2, s.rng.Float64()*0.2
	fx2, fy2 := s.rng.Float64()*0.05, s.rng.Float64()*0.05
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.1 * math.Sin(fx1*float64(x)+fy1*float64(y))
			v += 0.05 * math.Sin(fx2*float64(x)*fy2*float64(y))
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			img.Pix[y*w+x] = float32(v)
		}
	}
	return img
}

// vocabulary is the word pool for text and web-page generation.
var vocabulary = buildVocabulary()

func buildVocabulary() []string {
	rng := rand.New(rand.NewSource(42))
	words := make([]string, 2000)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range words {
		n := 2 + rng.Intn(9)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		words[i] = b.String()
	}
	return words
}

// zipfWord samples a vocabulary word with a Zipf-like rank
// distribution, matching natural-language frequency skew.
func (s *Source) zipfWord() string {
	// Inverse-CDF sampling of rank ~ 1/(r+1).
	u := s.rng.Float64()
	r := int(math.Pow(float64(len(vocabulary)), u)) - 1
	if r < 0 {
		r = 0
	} else if r >= len(vocabulary) {
		r = len(vocabulary) - 1
	}
	return vocabulary[r]
}

// Text produces approximately n bytes of word-like text with
// natural-language repetition (compressible, like the paper's Boost
// text files).
func (s *Source) Text(n int) []byte {
	var b strings.Builder
	b.Grow(n + 16)
	for b.Len() < n {
		b.WriteString(s.zipfWord())
		if s.rng.Intn(12) == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:n])
}

// WebPage produces a document of the given word count, the Case 4
// input unit (a CommonCrawl WET record analogue).
func (s *Source) WebPage(words int) string {
	var b strings.Builder
	for i := 0; i < words; i++ {
		b.WriteString(s.zipfWord())
		b.WriteByte(' ')
	}
	return b.String()
}

// SnortRules generates n detection rules in the style of the Snort
// community rule set: most rules carry 1-3 random content literals,
// a fraction add a PCRE confirmation, and some are case-insensitive.
func (s *Source) SnortRules(n int) []pattern.Rule {
	rules := make([]pattern.Rule, n)
	for i := range rules {
		nContents := 1 + s.rng.Intn(3)
		contents := make([][]byte, nContents)
		for j := range contents {
			contents[j] = s.ruleToken(5 + s.rng.Intn(12))
		}
		r := pattern.Rule{
			ID:       1_000_000 + i,
			Name:     fmt.Sprintf("SYNTH rule %d", i),
			Contents: contents,
			NoCase:   s.rng.Intn(4) == 0,
		}
		if s.rng.Intn(5) == 0 {
			// A simple confirming regex referencing one content.
			r.PCRE = fmt.Sprintf(`%s[a-z0-9]{0,8}`, string(contents[0]))
		}
		rules[i] = r
	}
	return rules
}

// ruleToken generates a content literal over a printable alphabet.
func (s *Source) ruleToken(n int) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789_/-."
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[s.rng.Intn(len(alphabet))]
	}
	return b
}

// Packet produces an n-byte payload resembling network traffic: mostly
// HTTP-ish printable content. With hitRules non-empty, one randomly
// chosen rule's contents are embedded so the packet triggers it, which
// happens with probability hitProb.
func (s *Source) Packet(n int, hitRules []pattern.Rule, hitProb float64) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 /.:-_?=&%"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[s.rng.Intn(len(alphabet))]
	}
	copy(b, "GET /")
	if len(hitRules) > 0 && s.rng.Float64() < hitProb {
		r := hitRules[s.rng.Intn(len(hitRules))]
		off := 8
		for _, c := range r.Contents {
			if off+len(c) >= n {
				break
			}
			copy(b[off:], c)
			off += len(c) + 1 + s.rng.Intn(4)
		}
	}
	return b
}

// ZipfIndices produces a stream of n indices into a pool of `pool`
// distinct items with Zipf popularity skew (s=1.1), modelling the
// repeated inputs that cloud applications encounter (the same file
// scanned by many users, etc.). The duplication rate rises with
// n/pool.
func (s *Source) ZipfIndices(n, pool int) []int {
	if pool < 1 {
		pool = 1
	}
	z := rand.NewZipf(s.rng, 1.1, 1, uint64(pool-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// DupStream builds a stream of n items where each item is drawn from a
// pool of `pool` distinct values produced by gen(i). With Zipf skew,
// popular items repeat often — the deduplication opportunity.
func DupStream[T any](s *Source, n, pool int, gen func(i int) T) []T {
	distinct := make([]T, pool)
	for i := range distinct {
		distinct[i] = gen(i)
	}
	idx := s.ZipfIndices(n, pool)
	out := make([]T, n)
	for i, j := range idx {
		out[i] = distinct[j]
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
