// Package lint is SPEED's in-tree static-analysis suite. It
// machine-checks the invariants the paper's security argument rests on
// but the Go compiler cannot see: plaintext and key material must never
// cross the enclave boundary unsealed (enclaveboundary), key-derivation
// buffers must be zeroized and never logged (keyzero), fields accessed
// atomically must be accessed atomically everywhere (atomicmix), every
// network operation on the Runtime-ResultStore path must carry a
// deadline and every retry loop a bounded backoff (deadline), and the
// wire protocol's marshal and unmarshal sides must agree (wiresym).
//
// The driver is deliberately dependency-free — stdlib go/parser and
// go/types only, no golang.org/x/tools — so offline builds keep
// working. The cost is that analyzers implement their own small AST
// walks instead of the x/tools analysis framework; the benefit is that
// `make lint` needs nothing beyond the toolchain.
//
// Findings can be suppressed with a directive comment on the same line
// or the line directly above:
//
//	//speedlint:ignore <analyzer> <reason>
//
// and a package is marked enclave-trusted (subject to the
// enclaveboundary import rules) by
//
//	//speedlint:trusted
//
// anywhere in its files.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// File is the path of the offending file, relative to the working
	// directory when possible.
	File string `json:"file"`
	// Line is the 1-based line of the finding.
	Line int `json:"line"`
	// Col is the 1-based column of the finding.
	Col int `json:"col"`
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Message describes the violated invariant.
	Message string `json:"message"`
}

// String renders the canonical "file:line: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

// JSON renders the finding as a single JSON line (no trailing newline),
// the -json output mode consumed by CI annotations and the bench
// harness.
func (d Diagnostic) JSON() string {
	b, err := json.Marshal(d)
	if err != nil {
		// Diagnostic is a flat struct of strings and ints; Marshal
		// cannot fail on it.
		panic(fmt.Sprintf("lint: marshal diagnostic: %v", err))
	}
	return string(b)
}

// Package is one loaded, parsed and (tolerantly) type-checked package.
type Package struct {
	// Path is the package import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset is the file set all position info resolves through.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object. Never nil after a
	// successful load, but possibly incomplete when type errors were
	// tolerated.
	Types *types.Package
	// Info holds the type-checker's resolution results. Analyzers must
	// tolerate missing entries (type errors leave holes).
	Info *types.Info
	// TypeErrors are the type-checking errors that were tolerated.
	TypeErrors []error

	// trustDirective records a //speedlint:trusted directive.
	trustDirective bool
	// ignores maps file -> line -> analyzer names suppressed on that
	// line (an empty set suppresses every analyzer).
	ignores map[string]map[int]map[string]bool
}

// TrustDirective reports whether any file of the package carries a
// //speedlint:trusted directive.
func (p *Package) TrustDirective() bool { return p.trustDirective }

// scanDirectives indexes the package's //speedlint: comments.
func (p *Package) scanDirectives() {
	p.ignores = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "speedlint:") {
					continue
				}
				directive := strings.TrimPrefix(text, "speedlint:")
				switch {
				case directive == "trusted" || strings.HasPrefix(directive, "trusted "):
					p.trustDirective = true
				case strings.HasPrefix(directive, "ignore"):
					args := strings.Fields(strings.TrimPrefix(directive, "ignore"))
					pos := p.Fset.Position(c.Pos())
					byLine := p.ignores[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						p.ignores[pos.Filename] = byLine
					}
					set := make(map[string]bool)
					if len(args) > 0 {
						// First token is the analyzer name; the rest is
						// the human reason.
						set[args[0]] = true
					}
					// The directive suppresses findings on its own line
					// and on the line below (for standalone comments).
					byLine[pos.Line] = set
					byLine[pos.Line+1] = set
				}
			}
		}
	}
}

// suppressed reports whether a finding by analyzer at pos is covered by
// an ignore directive.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	byLine, ok := p.ignores[pos.Filename]
	if !ok {
		return false
	}
	set, ok := byLine[pos.Line]
	if !ok {
		return false
	}
	return len(set) == 0 || set[analyzer]
}

// Config parameterises a suite run.
type Config struct {
	// TrustedPackages lists import path prefixes treated as
	// enclave-trusted in addition to packages carrying the
	// //speedlint:trusted directive.
	TrustedPackages []string
}

// DefaultConfig is the policy for this repository: the MLE crypto core
// and the enclave simulator are the trusted computing base.
func DefaultConfig() *Config {
	return &Config{
		TrustedPackages: []string{
			"speed/internal/mle",
			"speed/internal/enclave",
		},
	}
}

// Trusted reports whether pkg is enclave-trusted under the config.
func (c *Config) Trusted(pkg *Package) bool {
	if pkg.TrustDirective() {
		return true
	}
	for _, prefix := range c.TrustedPackages {
		if pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
			return true
		}
	}
	return false
}

// Pass is one analyzer's view of one package.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Config is the suite configuration.
	Config *Config

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos unless suppressed by a directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(p.analyzer, position) {
		return
	}
	file := position.Filename
	if rel, err := filepath.Rel(".", file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one SPEED invariant checker.
type Analyzer struct {
	// Name labels findings ("[name]") and is the key ignore directives
	// match against.
	Name string
	// Doc is the one-line description shown by speedlint -list.
	Doc string
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass)
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		EnclaveBoundaryAnalyzer,
		KeyZeroAnalyzer,
		AtomicMixAnalyzer,
		DeadlineAnalyzer,
		WireSymAnalyzer,
		SealFlowAnalyzer,
		FsyncOrderAnalyzer,
		GoroExitAnalyzer,
	}
}

// Run executes the analyzers over the packages, returning findings
// sorted by file, line and analyzer. A nil config selects
// DefaultConfig; nil analyzers selects the full suite.
func Run(pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if analyzers == nil {
		analyzers = Analyzers()
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Config: cfg, analyzer: a.Name, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}
