package bench

import (
	"strings"
	"testing"
)

func TestTable1ShapesHold(t *testing.T) {
	rows, err := Table1([]int{1 << 10, 64 << 10}, 3)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, large := rows[0], rows[1]
	// Hash-based ops scale with input size.
	if large.TagGenMS <= small.TagGenMS {
		t.Errorf("TagGen not increasing with size: %v vs %v", small.TagGenMS, large.TagGenMS)
	}
	if large.KeyGenMS <= small.KeyGenMS {
		t.Errorf("KeyGen not increasing with size: %v vs %v", small.KeyGenMS, large.KeyGenMS)
	}
	// All values positive.
	for _, r := range rows {
		if r.TagGenMS <= 0 || r.KeyGenMS <= 0 || r.KeyRecMS <= 0 ||
			r.ResultEncMS <= 0 || r.ResultDecMS <= 0 {
			t.Errorf("non-positive timing in %+v", r)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "TagGen") || !strings.Contains(out, "64") {
		t.Errorf("RenderTable1 output malformed:\n%s", out)
	}
}

func TestFig5SIFTQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig5SIFT([]int{48}, 1)
	if err != nil {
		t.Fatalf("Fig5SIFT: %v", err)
	}
	r := rows[0]
	if r.BaselineMS <= 0 || r.InitMS <= 0 || r.SubsqMS <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	// The defining shape: subsequent computation beats baseline.
	if r.SubsqMS >= r.BaselineMS {
		t.Errorf("no speedup: baseline %.3fms, subsq %.3fms", r.BaselineMS, r.SubsqMS)
	}
	out := RenderFig5("sift", rows)
	if !strings.Contains(out, "48x48") {
		t.Errorf("RenderFig5 output malformed:\n%s", out)
	}
}

func TestFig5CompressQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig5Compress([]int{64 << 10}, 1)
	if err != nil {
		t.Fatalf("Fig5Compress: %v", err)
	}
	if rows[0].SubsqMS >= rows[0].BaselineMS {
		t.Errorf("no speedup: %+v", rows[0])
	}
}

func TestFig5PatternQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig5Pattern([]int{8 << 10}, 200, 1)
	if err != nil {
		t.Fatalf("Fig5Pattern: %v", err)
	}
	if rows[0].SubsqMS >= rows[0].BaselineMS {
		t.Errorf("no speedup: %+v", rows[0])
	}
}

func TestFig5BoWQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig5BoW([]int{100}, 1)
	if err != nil {
		t.Fatalf("Fig5BoW: %v", err)
	}
	if rows[0].SubsqMS >= rows[0].BaselineMS {
		t.Errorf("no speedup: %+v", rows[0])
	}
}

func TestFig6SGXGapShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sizes := []int{1 << 10, 256 << 10}
	withSGX, err := Fig6(sizes, true, 5)
	if err != nil {
		t.Fatalf("Fig6 sgx: %v", err)
	}
	withoutSGX, err := Fig6(sizes, false, 5)
	if err != nil {
		t.Fatalf("Fig6 no-sgx: %v", err)
	}
	// At the small size the SGX penalty must be clearly visible (the
	// transition cost dominates): SGX at least 2x slower.
	if withSGX[0].Get100MS < 2*withoutSGX[0].Get100MS {
		t.Errorf("1KB: SGX GET penalty not visible (%.3f vs %.3f)",
			withSGX[0].Get100MS, withoutSGX[0].Get100MS)
	}
	// The relative gap shrinks as the result grows (the Fig. 6
	// finding). Timing noise at large sizes is real, so compare with a
	// 2x safety margin rather than strict monotonicity.
	gap := func(a, b Fig6Row) float64 {
		if b.Get100MS == 0 {
			return 0
		}
		return a.Get100MS / b.Get100MS
	}
	smallGap := gap(withSGX[0], withoutSGX[0])
	largeGap := gap(withSGX[1], withoutSGX[1])
	if largeGap > smallGap/2 {
		t.Errorf("SGX/native gap did not shrink with size: %v -> %v", smallGap, largeGap)
	}
	out := RenderFig6(withSGX, withoutSGX)
	if !strings.Contains(out, "GET sgx") {
		t.Errorf("RenderFig6 malformed:\n%s", out)
	}
}

func TestAblationScheme(t *testing.T) {
	rows, err := AblationScheme([]int{4 << 10}, 3)
	if err != nil {
		t.Fatalf("AblationScheme: %v", err)
	}
	r := rows[0]
	if r.RCEEncMS <= 0 || r.SingleEncMS <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	// RCE does strictly more work (extra full-input hash); allow noise
	// but it must not be dramatically cheaper.
	if r.RCEEncMS < r.SingleEncMS/4 {
		t.Errorf("RCE enc implausibly cheaper than single-key: %+v", r)
	}
	if out := RenderAblationScheme(rows); !strings.Contains(out, "RCE enc") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestAblationAsyncPut(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationAsyncPut([]int{256 << 10}, 3)
	if err != nil {
		t.Fatalf("AblationAsyncPut: %v", err)
	}
	r := rows[0]
	if r.SyncMS <= 0 || r.AsyncMS <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	// Async must shave caller-visible latency for large results.
	if r.AsyncMS >= r.SyncMS {
		t.Errorf("async put not cheaper: sync %.3f, async %.3f", r.SyncMS, r.AsyncMS)
	}
	if out := RenderAblationAsyncPut(rows); !strings.Contains(out, "sync(ms)") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestAblationOblivious(t *testing.T) {
	rows, err := AblationOblivious([]int{50, 2000}, 3)
	if err != nil {
		t.Fatalf("AblationOblivious: %v", err)
	}
	small, large := rows[0], rows[1]
	if small.PlainMS <= 0 || small.ObliviousMS <= 0 {
		t.Fatalf("non-positive timings: %+v", small)
	}
	// Oblivious lookups must get relatively slower as the dictionary
	// grows (linear scan), while plain lookups stay O(1)-ish.
	if large.ObliviousMS < 4*large.PlainMS {
		t.Errorf("oblivious scan at 2000 entries not clearly slower: %+v", large)
	}
	if out := RenderAblationOblivious(rows); !strings.Contains(out, "oblivious") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestAblationAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationAdaptive(120, 1)
	if err != nil {
		t.Fatalf("AblationAdaptive: %v", err)
	}
	byName := map[string]AdaptiveRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	always, never, adaptive := byName["always-dedup"], byName["never-dedup"], byName["adaptive"]
	if always.TotalMS <= 0 || never.TotalMS <= 0 || adaptive.TotalMS <= 0 {
		t.Fatalf("non-positive timings: %+v", rows)
	}
	// Never-dedup pays the 1ms hot function on every call: slowest.
	if never.TotalMS < always.TotalMS {
		t.Errorf("never-dedup (%.1fms) beat always-dedup (%.1fms) on a reuse-heavy half",
			never.TotalMS, always.TotalMS)
	}
	// Adaptive must not be slower than never-dedup, and should stay in
	// the neighbourhood of always-dedup (it keeps deduping the hot
	// function while cutting cheap-function overhead).
	if adaptive.TotalMS > never.TotalMS {
		t.Errorf("adaptive (%.1fms) slower than never-dedup (%.1fms)",
			adaptive.TotalMS, never.TotalMS)
	}
	if adaptive.Reused == 0 {
		t.Error("adaptive never reused the hot function")
	}
	if out := RenderAblationAdaptive(rows, 120); !strings.Contains(out, "adaptive") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestAblationBlobPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationBlobPlacement([]int{500, 4800}, 8<<10)
	if err != nil {
		t.Fatalf("AblationBlobPlacement: %v", err)
	}
	for _, r := range rows {
		if r.OutsidePageFaults != 0 {
			t.Errorf("outside-design paged at %d entries: %d faults (metadata should fit)",
				r.Entries, r.OutsidePageFaults)
		}
	}
	// At 4000 entries * 8KB = 32MB+ of blobs, the inside design must
	// either page or exhaust the 64MB EPC (recorded as -1).
	last := rows[len(rows)-1]
	if last.InsidePageFaults == 0 {
		t.Errorf("inside-design shows no paging pressure: %+v", last)
	}
	if out := RenderAblationBlobPlacement(rows, 8<<10); !strings.Contains(out, "Entries") {
		t.Errorf("render malformed:\n%s", out)
	}
}
