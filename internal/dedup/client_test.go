package dedup

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// remoteEnv runs a real store server on localhost and a RemoteClient
// connected to it.
type remoteEnv struct {
	platform *enclave.Platform
	appEnc   *enclave.Enclave
	storeEnc *enclave.Enclave
	store    *store.Store
	client   *RemoteClient
}

func newRemoteEnv(t *testing.T) *remoteEnv {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})

	client, err := Dial(ln.Addr().String(), appEnc, storeEnc.Measurement())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return &remoteEnv{platform: p, appEnc: appEnc, storeEnc: storeEnc, store: st, client: client}
}

func testTag(b byte) mle.Tag {
	var tag mle.Tag
	for i := range tag {
		tag[i] = b
	}
	return tag
}

func TestRemoteClientGetPut(t *testing.T) {
	env := newRemoteEnv(t)
	tag := testTag(0x42)

	_, found, err := env.client.Get(tag)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if found {
		t.Fatal("Get on empty store reported found")
	}

	sealed := mle.Sealed{
		Challenge:  []byte("challenge"),
		WrappedKey: []byte("wrapped"),
		Blob:       []byte("blob"),
	}
	if err := env.client.Put(tag, sealed, false); err != nil {
		t.Fatalf("Put: %v", err)
	}

	got, found, err := env.client.Get(tag)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !found || !bytes.Equal(got.Blob, sealed.Blob) {
		t.Errorf("Get = (%+v, %v), want stored sealed", got, found)
	}
}

func TestRemoteClientPutRejected(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, _ := p.Create("app", []byte("app code"))
	storeEnc, _ := p.Create("store", []byte("store code"))
	st, err := store.New(store.Config{
		Enclave: storeEnc,
		Quota:   store.QuotaConfig{MaxBytesPerApp: 1},
	})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})

	client, err := Dial(ln.Addr().String(), appEnc, storeEnc.Measurement())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	err = client.Put(testTag(1), mle.Sealed{Blob: []byte("too big for quota")}, false)
	if !errors.Is(err, ErrPutRejected) {
		t.Errorf("Put = %v, want ErrPutRejected", err)
	}
}

func TestRemoteClientConcurrent(t *testing.T) {
	env := newRemoteEnv(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tag := testTag(byte(i))
				if err := env.client.Put(tag, mle.Sealed{Blob: []byte{byte(i)}}, false); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, err := env.client.Get(tag); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// End-to-end: a runtime over the networked client behaves exactly like
// the local deployment.
func TestRuntimeOverRemoteClient(t *testing.T) {
	env := newRemoteEnv(t)
	rt, err := NewRuntime(Config{
		Enclave: env.appEnc,
		Client:  env.client,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}

	input := []byte("network input")
	res1, out1, err := rt.Execute(id, input, func(in []byte) ([]byte, error) {
		return append([]byte("net:"), in...), nil
	})
	if err != nil {
		t.Fatalf("Execute 1: %v", err)
	}
	if out1 != OutcomeComputed {
		t.Errorf("outcome 1 = %v, want computed", out1)
	}
	res2, out2, err := rt.Execute(id, input, func([]byte) ([]byte, error) {
		t.Error("recomputed over network despite stored result")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Execute 2: %v", err)
	}
	if out2 != OutcomeReused || !bytes.Equal(res1, res2) {
		t.Errorf("Execute 2 = (%q, %v), want reused %q", res2, out2, res1)
	}
}

func TestLocalClientCloseNoOp(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, _ := p.Create("store", []byte("store code"))
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	c := NewLocalClient(st, enclave.Measurement{})
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// The store must remain usable after client close.
	if _, _, err := st.Get(testTag(1)); err != nil {
		t.Errorf("store Get after client Close: %v", err)
	}
}
