package lint

import (
	"go/ast"
)

// GoroExitAnalyzer checks goroutine-lifecycle discipline in the
// long-running service packages (dedup, cluster, store, logengine):
// every `go` statement must launch a body whose CFG can reach its exit
// — a return behind a stop-channel select case, a `for range ch` that
// ends when the channel closes, or a plain one-shot body. A goroutine
// whose exit block is unreachable (an unconditional `for { work() }`
// with no shutdown edge) leaks forever: it survives Close, holds
// references, and turns graceful shutdown and tests into hangs.
//
// Both forms are checked: `go func() { ... }()` analyzes the literal's
// body; `go e.loop()` resolves the method through the package call
// graph and uses its never-returns summary.
var GoroExitAnalyzer = &Analyzer{
	Name: "goroexit",
	Doc:  "goroutines in the service packages need a reachable shutdown edge",
	Run:  runGoroExit,
}

// goroexitScope are the package names whose goroutines are checked —
// the layers that own long-lived background work.
var goroexitScope = map[string]bool{
	"dedup": true, "cluster": true, "store": true, "logengine": true,
}

func runGoroExit(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Types == nil || !goroexitScope[pkg.Types.Name()] {
		return
	}
	g := buildCallGraph(pkg)
	forEachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoroutine(pass, g, gs)
			return true
		})
	})
}

func checkGoroutine(pass *Pass, g *callGraph, gs *ast.GoStmt) {
	switch fn := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		cfg := buildCFG(fn.Body)
		if !cfg.reachableFrom(cfg.entry).has(cfg.exit.index) {
			pass.Reportf(gs.Pos(), "goroutine body has no reachable shutdown edge; give its loop a stop-channel/context case that returns")
		}
	default:
		if callee := g.resolve(gs.Call); callee != nil && callee.summary.neverReturns {
			pass.Reportf(gs.Pos(), "goroutine runs %s, which has no reachable return; give its loop a stop-channel/context case that returns", callee.decl.Name.Name)
		}
	}
}
