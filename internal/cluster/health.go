package cluster

import (
	"sync"
	"time"
)

// noteFailure records a transport failure against the member; after
// FailThreshold consecutive failures the member is marked down and the
// router stops preferring it until a probe or request succeeds.
func (c *Client) noteFailure(n *node, err error) {
	fails := n.fails.Add(1)
	if fails >= int64(c.cfg.FailThreshold) && n.up.CompareAndSwap(true, false) {
		c.logf("cluster: member %s marked down after %d consecutive failures: %v",
			n.addr, fails, err)
	}
}

// noteSuccess resets the member's failure streak and restores it to the
// routing tables if it was down.
func (c *Client) noteSuccess(n *node) {
	n.fails.Store(0)
	if n.up.CompareAndSwap(false, true) {
		c.logf("cluster: member %s marked up", n.addr)
	}
}

// noteFailover counts requests re-routed away from the member after a
// transport failure.
func (c *Client) noteFailover(n *node, requests int) {
	c.failovers.Add(int64(requests))
	n.failoversC.Add(int64(requests))
}

// NodesUp reports how many members are currently routable.
func (c *Client) NodesUp() int {
	up := 0
	for _, n := range c.nodes {
		if n.up.Load() {
			up++
		}
	}
	return up
}

// NodeUp reports whether the member at the given index of Config.Nodes
// is currently routable.
func (c *Client) NodeUp(i int) bool { return c.nodes[i].up.Load() }

// probeLoop pings every member each ProbeInterval. Probes are the only
// path that brings a down member back: request routing skips down
// members, so without probes a recovered member would stay out of
// rotation. Probes run concurrently so one hung member cannot delay the
// health verdict on the rest.
func (c *Client) probeLoop() {
	defer close(c.probeD)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, n := range c.nodes {
			n := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := n.client.Ping(); err != nil {
					c.noteFailure(n, err)
					return
				}
				c.noteSuccess(n)
			}()
		}
		wg.Wait()
	}
}
