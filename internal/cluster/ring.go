// Package cluster scales the encrypted ResultStore beyond one server:
// a consistent-hash ring partitions the tag space over N independent
// resultstore servers, a Client routes GET/PUT traffic to each tag's
// replica owners with failover and read-repair, and a Syncer pulls
// popular results from the members over the wire protocol and re-places
// them on the ring — the multi-machine deployment Section IV-B sketches
// ("deploy a master ResultStore on a dedicated server, which
// periodically synchronizes the popular results from different
// machines"), generalized from one master to a partitioned store tier.
//
// Trust model: each member is an ordinary attested resultstore. The
// Client pins one store measurement for every node, so a node that does
// not run the expected store code never completes the handshake. A
// malicious-but-attested host can still drop requests or answer "not
// found" — exactly the untrusted-storage assumption the store already
// lives under — costing recomputation, never confidentiality: results
// cross the wire sealed under MLE keys the store tier cannot derive.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"speed/internal/mle"
)

// defaultVNodes is the virtual-node count per member when
// Config.VNodes is zero. 64 points per node keeps the expected load
// imbalance across members within a few percent while the ring stays
// small enough to rebuild on any membership change.
const defaultVNodes = 64

// ring is an immutable consistent-hash ring: every member contributes
// VNodes points, and a tag is owned by the first points clockwise from
// its hash. Placement is deterministic in (nodes, vnodes) alone, so
// every client routes identically, and adding or removing one member
// remaps only ~1/N of the tag space (the vnode points of the changed
// member), never reshuffling the rest.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int // index into the member list
}

// newRing builds the ring for the given member addresses. Ring points
// are derived from the member address, not its index, so reordering the
// configured node list does not move data.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{
		points: make([]ringPoint, 0, len(nodes)*vnodes),
		nodes:  len(nodes),
	}
	for i, node := range nodes {
		for v := 0; v < vnodes; v++ {
			h := sha256.Sum256([]byte("speed/ring/v1\x00" + node + "\x00" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(h[:8]),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owners returns the first n distinct members clockwise from the tag's
// ring position. owners(tag, 1)[0] is the tag's primary; the next
// entries are its replica successors. Tags are already uniform
// cryptographic hashes, so their leading bytes are used directly as the
// ring coordinate.
func (r *ring) owners(tag mle.Tag, n int) []int {
	if r.nodes == 0 {
		return nil
	}
	if n > r.nodes {
		n = r.nodes
	}
	h := binary.BigEndian.Uint64(tag[:8])
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
