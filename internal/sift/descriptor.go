package sift

import "math"

const (
	orientBins    = 36
	descGrid      = 4
	descBins      = 8
	descPeakClamp = 0.2
)

// gradient returns the magnitude and angle (in [0, 2π)) of the image
// gradient at (x, y) by central differences.
func gradient(img *Gray, x, y int) (mag, angle float64) {
	dx := float64(img.At(x+1, y) - img.At(x-1, y))
	dy := float64(img.At(x, y+1) - img.At(x, y-1))
	mag = math.Hypot(dx, dy)
	angle = math.Atan2(dy, dx)
	if angle < 0 {
		angle += 2 * math.Pi
	}
	return mag, angle
}

// orientations assigns dominant orientations to a keypoint at (x, y) in
// the given Gaussian level: a 36-bin gradient histogram weighted by a
// Gaussian window of 1.5*sigma, with every peak above 80% of the
// maximum producing a keypoint orientation (Lowe Section 5).
func orientations(img *Gray, x, y int, sigma float64) []float64 {
	var hist [orientBins]float64
	window := 1.5 * sigma
	radius := int(math.Ceil(3 * window))
	if radius < 1 {
		radius = 1
	}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			px, py := x+dx, y+dy
			if px < 1 || px >= img.W-1 || py < 1 || py >= img.H-1 {
				continue
			}
			mag, angle := gradient(img, px, py)
			if mag == 0 {
				continue
			}
			w := math.Exp(-float64(dx*dx+dy*dy) / (2 * window * window))
			bin := int(angle/(2*math.Pi)*orientBins) % orientBins
			hist[bin] += w * mag
		}
	}

	// Smooth the histogram with a small box filter, as is customary.
	var smoothed [orientBins]float64
	for i := range hist {
		smoothed[i] = (hist[(i+orientBins-1)%orientBins] + hist[i] + hist[(i+1)%orientBins]) / 3
	}

	maxVal := 0.0
	for _, v := range smoothed {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		return []float64{0}
	}
	var out []float64
	for i, v := range smoothed {
		prev := smoothed[(i+orientBins-1)%orientBins]
		next := smoothed[(i+1)%orientBins]
		if v >= 0.8*maxVal && v > prev && v > next {
			// Parabolic interpolation of the peak.
			offset := 0.5 * (prev - next) / (prev - 2*v + next)
			angle := (float64(i) + 0.5 + offset) * 2 * math.Pi / orientBins
			if angle < 0 {
				angle += 2 * math.Pi
			}
			out = append(out, angle)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// describe computes the 4x4x8 SIFT descriptor around (x, y) at the
// given scale, rotated to the keypoint orientation, normalized,
// clamped at 0.2, renormalized, and quantized to bytes.
func describe(img *Gray, x, y int, sigma, orientation float64) [128]uint8 {
	var hist [descGrid][descGrid][descBins]float64
	binWidth := 3.0 * sigma // spatial width of one descriptor cell
	radius := int(math.Ceil(binWidth * float64(descGrid) / 2 * math.Sqrt2))
	cosT := math.Cos(-orientation)
	sinT := math.Sin(-orientation)

	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			px, py := x+dx, y+dy
			if px < 1 || px >= img.W-1 || py < 1 || py >= img.H-1 {
				continue
			}
			// Rotate the offset into the keypoint frame.
			rx := (cosT*float64(dx) - sinT*float64(dy)) / binWidth
			ry := (sinT*float64(dx) + cosT*float64(dy)) / binWidth
			// Cell coordinates in [0, 4).
			cx := rx + descGrid/2 - 0.5
			cy := ry + descGrid/2 - 0.5
			if cx <= -1 || cx >= descGrid || cy <= -1 || cy >= descGrid {
				continue
			}
			mag, angle := gradient(img, px, py)
			if mag == 0 {
				continue
			}
			relAngle := angle - orientation
			for relAngle < 0 {
				relAngle += 2 * math.Pi
			}
			for relAngle >= 2*math.Pi {
				relAngle -= 2 * math.Pi
			}
			ob := relAngle / (2 * math.Pi) * descBins
			w := math.Exp(-(rx*rx + ry*ry) / (2 * float64(descGrid*descGrid) / 4))

			// Trilinear interpolation into the (cx, cy, ob) histogram.
			x0, y0, o0 := int(math.Floor(cx)), int(math.Floor(cy)), int(math.Floor(ob))
			fx, fy, fo := cx-float64(x0), cy-float64(y0), ob-float64(o0)
			for ix := 0; ix <= 1; ix++ {
				gx := x0 + ix
				if gx < 0 || gx >= descGrid {
					continue
				}
				wx := fx
				if ix == 0 {
					wx = 1 - fx
				}
				for iy := 0; iy <= 1; iy++ {
					gy := y0 + iy
					if gy < 0 || gy >= descGrid {
						continue
					}
					wy := fy
					if iy == 0 {
						wy = 1 - fy
					}
					for io := 0; io <= 1; io++ {
						gb := (o0 + io) % descBins
						wo := fo
						if io == 0 {
							wo = 1 - fo
						}
						hist[gy][gx][gb] += w * mag * wx * wy * wo
					}
				}
			}
		}
	}

	// Flatten, normalize, clamp, renormalize, quantize.
	var vec [128]float64
	i := 0
	for gy := 0; gy < descGrid; gy++ {
		for gx := 0; gx < descGrid; gx++ {
			for b := 0; b < descBins; b++ {
				vec[i] = hist[gy][gx][b]
				i++
			}
		}
	}
	normalize(&vec)
	for i := range vec {
		if vec[i] > descPeakClamp {
			vec[i] = descPeakClamp
		}
	}
	normalize(&vec)

	var out [128]uint8
	for i, v := range vec {
		q := int(v * 512)
		if q > 255 {
			q = 255
		}
		out[i] = uint8(q)
	}
	return out
}

func normalize(v *[128]float64) {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	if sum == 0 {
		return
	}
	inv := 1 / math.Sqrt(sum)
	for i := range v {
		v[i] *= inv
	}
}
