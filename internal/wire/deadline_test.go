package wire

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"speed/internal/enclave"
)

// TestChannelSetDeadline: an expired deadline must surface as a
// timeout from Recv instead of blocking forever, and clearing it must
// restore normal operation on a fresh channel.
func TestChannelSetDeadline(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	app, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	st, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	client, server := handshakePair(t, p, app, st, nil)
	defer client.Close()
	defer server.Close()

	// net.Pipe supports deadlines, so the channel must report support.
	if !client.SetDeadline(time.Now().Add(30 * time.Millisecond)) {
		t.Fatal("SetDeadline over net.Pipe reported unsupported")
	}
	// Nothing is sent: Recv must time out rather than hang.
	start := time.Now()
	_, err = client.Recv()
	if err == nil {
		t.Fatal("Recv with expired deadline returned nil error")
	}
	var ne interface{ Timeout() bool }
	if !errors.As(err, &ne) || !ne.Timeout() {
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("Recv error = %v, want timeout", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Recv blocked %v despite deadline", elapsed)
	}

	// Clearing the deadline restores a usable transport for frames the
	// peer sends afterwards.
	if !client.SetDeadline(time.Time{}) {
		t.Fatal("clearing deadline reported unsupported")
	}
	go func() {
		_ = server.Send([]byte("after deadline"))
	}()
	payload, err := client.Recv()
	if err != nil {
		// A timed-out Recv may have desynchronised the stream
		// mid-frame; all that is required here is a clean error, not a
		// hang. But with no bytes sent before the timeout, the stream
		// position is intact and the frame must arrive.
		t.Fatalf("Recv after clearing deadline: %v", err)
	}
	if !bytes.Equal(payload, []byte("after deadline")) {
		t.Errorf("payload = %q", payload)
	}
}
