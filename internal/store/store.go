package store

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	storeengine "speed/internal/store/engine"
	"speed/internal/store/logengine"
	"speed/internal/telemetry"
)

// entryOverhead approximates the in-enclave footprint of one dictionary
// entry beyond its variable-length fields: tag key, blob pointer,
// counters and map bucket overhead. It is charged against the store
// enclave's EPC so that large dictionaries produce realistic paging
// pressure.
const entryOverhead = 96

// defaultShards is the dictionary shard count when Config.Shards is
// zero. Power of two, so shard selection is a mask over the tag bytes.
const defaultShards = 8

// maxShards bounds Config.Shards; beyond this the per-shard fixed
// overhead outweighs any contention win.
const maxShards = 256

var (
	// ErrQuota is returned when a PUT is rejected by the quota
	// mechanism.
	ErrQuota = errors.New("store: quota exceeded")
	// ErrClosed is returned after Close.
	ErrClosed = storeengine.ErrClosed
)

// Engine names accepted by Config.Engine.
const (
	// EngineMemory is the default volatile engine: the lock-striped
	// sharded dictionary with global LRU.
	EngineMemory = "memory"
	// EngineLog is the persistent log-structured engine
	// (internal/store/logengine): sealed WAL + sorted segments, crash
	// recovery by segment load and WAL replay.
	EngineLog = "log"
)

// Config configures a Store.
type Config struct {
	// Enclave hosts the metadata dictionary. Required.
	Enclave *enclave.Enclave
	// Engine selects the storage backend behind the store: "" or
	// "memory" for the in-RAM sharded dictionary (the default, exactly
	// the pre-engine behavior), or "log" for the persistent
	// log-structured engine rooted at DataDir.
	Engine string
	// DataDir is the log engine's on-disk directory. Required when
	// Engine is "log"; setting it with Engine unset selects "log".
	DataDir string
	// MemtableBytes bounds the log engine's in-memory write buffer
	// before it flushes a sorted segment; 0 selects the default.
	MemtableBytes int64
	// CacheBytes bounds the log engine's hot-entry read cache; 0
	// selects the default.
	CacheBytes int64
	// Fsync selects the log engine's WAL durability policy: "commit"
	// (fsync before acknowledging every PUT, the default), "interval"
	// (background fsync), or "none" (leave it to the OS).
	Fsync string
	// CompactInterval is how often the log engine's background
	// compactor considers merging segments; 0 selects the default.
	CompactInterval time.Duration
	// Blobs holds ciphertexts outside the enclave for the memory
	// engine. Defaults to an in-memory store. The log engine keeps
	// values in its own segments and ignores it.
	Blobs BlobStore
	// Shards is the number of lock-striped dictionary shards of the
	// memory engine; rounded up to a power of two, defaulting to 8.
	// Tags are uniformly distributed hashes, so striping spreads
	// GET/PUT lock contention evenly and lets concurrent requests
	// proceed on different cores.
	Shards int
	// MaxEntries caps the dictionary size; 0 means unlimited. When
	// exceeded, least-recently-used entries are evicted. The cap is
	// global: the eviction victim is the least recently used entry
	// across the whole engine, not a per-shard quota.
	MaxEntries int
	// MaxBlobBytes caps total ciphertext bytes; 0 means unlimited.
	MaxBlobBytes int64
	// Quota bounds per-application usage.
	Quota QuotaConfig
	// Auth, when non-nil, gates every operation by the caller's
	// attested measurement (controlled deduplication, Section III-D).
	Auth Authorizer
	// Oblivious makes dictionary lookups access-pattern oblivious: a
	// GET touches every in-enclave entry with constant-time tag
	// comparison and performs no LRU bookkeeping, so an adversary
	// observing enclave memory accesses cannot tell which entry (if
	// any) matched — or which shard held it. This trades throughput for
	// side-channel resistance (the security/performance balance the
	// paper defers to future work, Section III-D). With the log engine
	// the guarantee covers the in-enclave structures (memtable, cache,
	// segment index); see DESIGN.md "Storage engines".
	Oblivious bool
	// TTL expires entries that have not been stored or hit within the
	// given duration; 0 disables expiry. Expired entries are collected
	// lazily on access and by ExpireNow.
	TTL time.Duration
	// Telemetry, when non-nil, registers the store's counters (gets,
	// hits, puts, denials, evictions — backed by the Stats snapshot),
	// occupancy gauges (total and, for the memory engine, per shard;
	// for the log engine, WAL/segment/cache gauges), and per-operation
	// service-latency histograms speed_store_op_seconds{op="get"|"put"}.
	// Nil disables.
	Telemetry *telemetry.Registry
	// Now is the clock used by the quota, TTL and LRU mechanisms; nil
	// means time.Now. Injectable for tests.
	Now func() time.Time
	// Logf receives engine diagnostics (recovery, compaction); nil
	// discards.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of store activity. The operation counters are
// mutated and snapshotted under one lock, so the snapshot is
// internally consistent (e.g. Hits never exceeds Gets).
type Stats struct {
	Gets         int64
	Hits         int64
	Puts         int64
	PutDupes     int64
	PutDenied    int64
	Unauthorized int64
	Evictions    int64
	Expired      int64
	Entries      int
	BlobBytes    int64
}

// Store is the encrypted ResultStore: engine-neutral policy
// (authorization, quotas, TTL, limits, telemetry, snapshots) over a
// pluggable storage Engine. All methods are safe for concurrent use.
type Store struct {
	cfg Config
	eng storeengine.Engine

	quota  *quotas
	closed atomic.Bool

	statsMu sync.Mutex
	ops     Stats // operation counters; Entries/BlobBytes filled on snapshot

	// Per-op service-latency histograms; nil (and skipped) when
	// Config.Telemetry was nil.
	getSeconds *telemetry.Histogram
	putSeconds *telemetry.Histogram
}

// New constructs a Store over the configured engine.
func New(cfg Config) (*Store, error) {
	if cfg.Enclave == nil {
		return nil, errors.New("store: Config.Enclave is required")
	}
	if cfg.Blobs == nil {
		cfg.Blobs = NewMemBlobStore()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	engineName := cfg.Engine
	if engineName == "" {
		if cfg.DataDir != "" {
			engineName = EngineLog
		} else {
			engineName = EngineMemory
		}
	}
	s := &Store{cfg: cfg, quota: newQuotas(cfg.Quota, cfg.Now)}
	switch engineName {
	case EngineMemory:
		s.eng = newMemEngine(cfg.Enclave, cfg.Blobs, cfg.Shards, cfg.Oblivious, cfg.TTL, cfg.Now)
	case EngineLog:
		if cfg.DataDir == "" {
			return nil, errors.New("store: Engine \"log\" requires Config.DataDir")
		}
		fsync, err := logengine.ParseFsync(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		eng, err := logengine.Open(logengine.Config{
			Dir:             cfg.DataDir,
			Enclave:         cfg.Enclave,
			MemtableBytes:   cfg.MemtableBytes,
			CacheBytes:      cfg.CacheBytes,
			Fsync:           fsync,
			CompactInterval: cfg.CompactInterval,
			Oblivious:       cfg.Oblivious,
			TTL:             cfg.TTL,
			Now:             cfg.Now,
			Logf:            cfg.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("store: open log engine: %w", err)
		}
		s.eng = eng
	default:
		return nil, fmt.Errorf("store: unknown engine %q", cfg.Engine)
	}
	s.registerTelemetry(cfg.Telemetry)
	return s, nil
}

// EngineName reports the active storage engine ("memory" or "log").
func (s *Store) EngineName() string { return s.eng.Name() }

// Persistent reports whether acknowledged PUTs survive a crash (the
// log engine). Autosaver uses it to switch from snapshot writing to
// checkpoint triggering.
func (s *Store) Persistent() bool { return s.eng.Durable() }

// Checkpoint makes every acknowledged PUT durable (log engine: flush
// the memtable and fsync the WAL). A no-op on the memory engine.
func (s *Store) Checkpoint() error { return s.eng.Checkpoint() }

// ShardCount reports the number of dictionary shards of the memory
// engine; 1 for engines without shards.
func (s *Store) ShardCount() int {
	if sc, ok := s.eng.(interface{ ShardCount() int }); ok {
		return sc.ShardCount()
	}
	return 1
}

// memShards exposes the memory engine's stripes to in-package tests.
func (s *Store) memShards() []*shard {
	if m, ok := s.eng.(*memEngine); ok {
		return m.shards
	}
	return nil
}

// registerTelemetry wires the store into reg: latency histograms are
// real metrics observed inline, while the counters and gauges read the
// Stats snapshot on demand so there is a single source of truth (and
// several stores sharing one registry sum, see telemetry.CounterFunc).
// Engine-specific series (per-shard occupancy, WAL/segment/cache
// activity) are registered by the engine itself, labeled by engine.
func (s *Store) registerTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.getSeconds = reg.NewHistogram("speed_store_op_seconds",
		"store operation service latency", telemetry.L("op", "get"))
	s.putSeconds = reg.NewHistogram("speed_store_op_seconds",
		"store operation service latency", telemetry.L("op", "put"))
	for _, c := range []struct {
		name, help string
		field      func(Stats) int64
	}{
		{"speed_store_gets_total", "GET requests", func(st Stats) int64 { return st.Gets }},
		{"speed_store_hits_total", "GET requests answered positively", func(st Stats) int64 { return st.Hits }},
		{"speed_store_puts_total", "accepted fresh uploads", func(st Stats) int64 { return st.Puts }},
		{"speed_store_put_dupes_total", "uploads for already-stored tags", func(st Stats) int64 { return st.PutDupes }},
		{"speed_store_put_denied_total", "uploads rejected by quota", func(st Stats) int64 { return st.PutDenied }},
		{"speed_store_unauthorized_total", "operations denied by controlled deduplication", func(st Stats) int64 { return st.Unauthorized }},
		{"speed_store_evictions_total", "entries evicted by LRU pressure", func(st Stats) int64 { return st.Evictions }},
		{"speed_store_expired_total", "entries collected by TTL expiry", func(st Stats) int64 { return st.Expired }},
	} {
		field := c.field
		reg.NewCounterFunc(c.name, c.help, func() int64 { return field(s.Stats()) })
	}
	reg.NewGaugeFunc("speed_store_entries", "current dictionary size",
		func() float64 { return float64(s.Len()) })
	reg.NewGaugeFunc("speed_store_blob_bytes", "resident ciphertext bytes outside the enclave",
		func() float64 { return float64(s.eng.ValueBytes()) })
	if et, ok := s.eng.(interface {
		RegisterTelemetry(*telemetry.Registry)
	}); ok {
		et.RegisterTelemetry(reg)
	}
}

// Enclave returns the enclave hosting the metadata dictionary.
func (s *Store) Enclave() *enclave.Enclave { return s.cfg.Enclave }

// GetAs is Get with the caller's attested identity, consulted by the
// store's Authorizer when one is configured.
func (s *Store) GetAs(app enclave.Measurement, tag mle.Tag) (mle.Sealed, bool, error) {
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Authorize(app, tag, PermGet); err != nil {
			s.statsMu.Lock()
			s.ops.Unauthorized++
			s.statsMu.Unlock()
			return mle.Sealed{}, false, err
		}
	}
	return s.Get(tag)
}

// HasAs reports whether the tag is present, without fetching the
// sealed value, counting a hit, or refreshing recency — the existence
// probe behind HAS_BATCH (chunked dedup's missing-chunk transfer).
// Authorization uses PermGet: a caller that may not read the entry
// learns nothing (the probe reports absent rather than erroring, so
// HAS_BATCH answers are deny-without-information). The answer is a
// hint, not a promise; a probed-present entry can still expire or be
// evicted before a later Get.
func (s *Store) HasAs(app enclave.Measurement, tag mle.Tag) (bool, error) {
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Authorize(app, tag, PermGet); err != nil {
			s.statsMu.Lock()
			s.ops.Unauthorized++
			s.statsMu.Unlock()
			return false, nil
		}
	}
	return s.eng.Contains(tag)
}

// Get looks up the computation tag, returning the (r, [k], [res])
// triple when found. How the lookup is served depends on the engine:
// the memory engine does one in-enclave dictionary access plus a blob
// fetch; the log engine consults its memtable, hot cache and sorted
// segments.
func (s *Store) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	if s.getSeconds != nil {
		start := time.Now()
		defer func() { s.getSeconds.Observe(time.Since(start)) }()
	}
	rec, status, err := s.eng.Get(tag)
	if err != nil {
		return mle.Sealed{}, false, err
	}
	switch status {
	case storeengine.StatusExpired:
		s.remove(tag, reasonExpire)
		s.countGet(false)
		return mle.Sealed{}, false, nil
	case storeengine.StatusDangling:
		// The entry was found (a hit, for accounting) but its value is
		// gone; drop it and report a miss so the application recomputes.
		s.countGet(true)
		s.remove(tag, reasonDangling)
		return mle.Sealed{}, false, nil
	case storeengine.StatusHit:
		s.countGet(true)
		return mle.Sealed{
			Challenge:  rec.Challenge,
			WrappedKey: rec.WrappedKey,
			Blob:       rec.Blob,
		}, true, nil
	default:
		s.countGet(false)
		return mle.Sealed{}, false, nil
	}
}

// countGet folds one lookup into the op counters under a single lock
// acquisition, keeping Stats snapshots consistent (Hits <= Gets).
func (s *Store) countGet(hit bool) {
	s.statsMu.Lock()
	s.ops.Gets++
	if hit {
		s.ops.Hits++
	}
	s.statsMu.Unlock()
}

// Put stores a freshly computed sealed result for the tag on behalf of
// the application identified by owner. Duplicate tags keep the first
// stored version ("only one version of result ciphertext ... needs to
// be stored", Section IV-B Remark); installed reports whether this call
// created the entry.
func (s *Store) Put(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed) (installed bool, err error) {
	return s.put(owner, tag, sealed, putOpts{})
}

// PutReplace stores a sealed result, overwriting any existing entry
// for the tag. It is used when an application recomputed a result
// after the stored version failed the verification protocol (a
// poisoned or corrupted entry): without replacement the bad entry
// would be permanent, costing every future caller a recomputation.
// Replacement is still subject to authorization and quotas, so an
// adversary cannot use it to thrash the cache faster than its PUT rate
// allows.
func (s *Store) PutReplace(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed) (installed bool, err error) {
	return s.put(owner, tag, sealed, putOpts{replace: true})
}

// putOpts selects Put variants.
type putOpts struct {
	// restore bypasses authorization and rate limiting for
	// operator-initiated snapshot restores while keeping byte
	// accounting consistent.
	restore bool
	// replace removes any existing entry for the tag before inserting.
	replace bool
	// hits seeds the entry's hit counter (snapshot restore).
	hits int64
}

func (s *Store) put(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed, opts putOpts) (installed bool, err error) {
	if s.putSeconds != nil {
		start := time.Now()
		defer func() { s.putSeconds.Observe(time.Since(start)) }()
	}
	restore := opts.restore
	if s.cfg.Auth != nil && !restore {
		if aerr := s.cfg.Auth.Authorize(owner, tag, PermPut); aerr != nil {
			s.statsMu.Lock()
			s.ops.Unauthorized++
			s.statsMu.Unlock()
			return false, aerr
		}
	}
	blobLen := int64(len(sealed.Blob))
	if ok, reason := s.quota.allowPut(owner, blobLen, restore); !ok {
		s.statsMu.Lock()
		s.ops.PutDenied++
		s.statsMu.Unlock()
		return false, fmt.Errorf("%w: %s", ErrQuota, reason)
	}

	if opts.replace {
		// Drop any existing version before inserting. Not atomic with
		// the insert below: a concurrent Put can win the race, in
		// which case this call reports a duplicate — acceptable, since
		// any fresh version supersedes the bad one.
		s.remove(tag, reasonReplace)
	}

	rec := storeengine.Record{
		Challenge:  append([]byte(nil), sealed.Challenge...),
		WrappedKey: append([]byte(nil), sealed.WrappedKey...),
		Blob:       sealed.Blob,
		BlobSize:   blobLen,
		Owner:      owner,
		Hits:       opts.hits,
		LastTouch:  s.cfg.Now(),
	}
	installed, err = s.eng.Insert(tag, rec)
	if err != nil {
		s.quota.creditBytes(owner, blobLen)
		return false, err
	}
	if !installed {
		s.statsMu.Lock()
		s.ops.PutDupes++
		s.statsMu.Unlock()
		s.quota.creditBytes(owner, blobLen)
		return false, nil
	}
	s.statsMu.Lock()
	s.ops.Puts++
	s.statsMu.Unlock()
	s.enforceLimits()
	return true, nil
}

// enforceLimits evicts least-recently-used entries until the global
// MaxEntries/MaxBlobBytes caps are respected. The victim is the
// engine's globally least-recent entry regardless of where it lives
// (eviction fairness across shards and tiers).
func (s *Store) enforceLimits() {
	if s.cfg.MaxEntries <= 0 && s.cfg.MaxBlobBytes <= 0 {
		return
	}
	// Bound the loop: one pass can only need to evict as many entries
	// as exist.
	limit := s.eng.Len() + 1
	for i := 0; i < limit; i++ {
		overEntries := s.cfg.MaxEntries > 0 && s.eng.Len() > s.cfg.MaxEntries
		overBytes := s.cfg.MaxBlobBytes > 0 && s.eng.ValueBytes() > s.cfg.MaxBlobBytes
		if !overEntries && !overBytes {
			return
		}
		victim, ok := s.eng.Oldest()
		if !ok {
			return
		}
		s.remove(victim, reasonEvict)
	}
}

// ExpireNow sweeps the dictionary, removing every entry past its TTL,
// and reports how many were removed. A no-op without a configured TTL.
func (s *Store) ExpireNow() int {
	if s.cfg.TTL <= 0 {
		return 0
	}
	var stale []mle.Tag
	_ = s.eng.Iterate(func(tag mle.Tag, rec storeengine.Record) bool {
		if s.cfg.Now().Sub(rec.LastTouch) > s.cfg.TTL {
			stale = append(stale, tag)
		}
		return true
	})
	removed := 0
	for _, tag := range stale {
		if s.remove(tag, reasonExpire) {
			removed++
		}
	}
	return removed
}

// deleteReason distinguishes why an entry is removed, for accurate
// statistics.
type deleteReason int

const (
	reasonEvict deleteReason = iota + 1
	reasonExpire
	reasonDangling
	reasonReplace
)

// remove deletes an entry through the engine and settles quota and
// stats accounting. It reports whether the entry existed.
func (s *Store) remove(tag mle.Tag, reason deleteReason) bool {
	rec, ok, _ := s.eng.Remove(tag)
	if !ok {
		return false
	}
	switch reason {
	case reasonEvict:
		s.statsMu.Lock()
		s.ops.Evictions++
		s.statsMu.Unlock()
	case reasonExpire:
		s.statsMu.Lock()
		s.ops.Expired++
		s.statsMu.Unlock()
	}
	s.quota.creditBytes(rec.Owner, rec.BlobSize)
	return true
}

// Stats returns a snapshot of the store's counters. The operation
// counters are copied under their lock, so the snapshot is internally
// consistent; occupancy comes from the engine.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	st := s.ops
	s.statsMu.Unlock()
	st.Entries = s.eng.Len()
	st.BlobBytes = s.eng.ValueBytes()
	return st
}

// EngineStats returns the active engine's occupancy and activity
// snapshot (WAL/segment/cache counters are zero on the memory engine).
func (s *Store) EngineStats() storeengine.Stats {
	return s.eng.Stats()
}

// Len reports the number of dictionary entries.
func (s *Store) Len() int {
	return s.eng.Len()
}

// AppBytes reports the resident ciphertext bytes attributed to an
// application for quota purposes.
func (s *Store) AppBytes(owner enclave.Measurement) int64 {
	return s.quota.bytesOf(owner)
}

// Close marks the store closed. Subsequent Get/Put return ErrClosed.
// With the log engine, Close flushes and releases the on-disk state.
func (s *Store) Close() {
	s.closed.Store(true)
	_ = s.eng.Close()
}

// Compact triggers a full segment compaction on engines that support
// it (the log engine); a no-op otherwise.
func (s *Store) Compact() error {
	if c, ok := s.eng.(interface{ CompactNow() error }); ok {
		return c.CompactNow()
	}
	return nil
}

// Crash abandons the store without flushing or syncing — the on-disk
// state a kill -9 would leave behind. The persistence benchmark and
// crash tests use it to measure recovery of acknowledged PUTs; on
// engines without crash simulation it degrades to Close.
func (s *Store) Crash() {
	s.closed.Store(true)
	if c, ok := s.eng.(interface{ Crash() }); ok {
		c.Crash()
		return
	}
	_ = s.eng.Close()
}

// Closed reports whether Close has been called.
func (s *Store) Closed() bool {
	return s.closed.Load()
}

// ExportEntry is a replication record: everything needed to install the
// result at another store.
type ExportEntry struct {
	Tag    mle.Tag
	Sealed mle.Sealed
	Hits   int64
	Owner  enclave.Measurement
}

// exportHeap is a min-heap by hits, keeping the top-max hottest
// entries with bounded memory while the engine streams records.
type exportHeap []ExportEntry

func (h exportHeap) Len() int           { return len(h) }
func (h exportHeap) Less(i, j int) bool { return h[i].Hits < h[j].Hits }
func (h exportHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *exportHeap) Push(x any)        { *h = append(*h, x.(ExportEntry)) }
func (h *exportHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// ExportHotAs returns up to max entries with at least minHits hits,
// most frequently hit first, on behalf of the attested application app.
// It backs the wire-level SYNC_PULL request (cluster.Syncer): a remote
// puller gets the store's popular results without walking the whole
// dictionary, and — when controlled deduplication is configured — only
// the entries it is authorized to read. max values outside (0,
// wire.MaxBatchItems] are clamped by the server; a non-positive max
// here means unlimited.
//
// The walk streams through the engine's bounded iterator holding at
// most max candidate entries, so it works on log-engine stores whose
// keyspace does not fit in memory.
func (s *Store) ExportHotAs(app enclave.Measurement, minHits int64, max int) ([]ExportEntry, error) {
	var (
		top exportHeap
		all []ExportEntry
	)
	err := s.eng.Iterate(func(tag mle.Tag, rec storeengine.Record) bool {
		if rec.Hits < minHits {
			return true
		}
		if s.cfg.Auth != nil {
			if aerr := s.cfg.Auth.Authorize(app, tag, PermGet); aerr != nil {
				return true // deny without information, as for GET
			}
		}
		e := ExportEntry{
			Tag: tag,
			Sealed: mle.Sealed{
				Challenge:  rec.Challenge,
				WrappedKey: rec.WrappedKey,
				Blob:       rec.Blob,
			},
			Hits:  rec.Hits,
			Owner: rec.Owner,
		}
		if max > 0 {
			if len(top) < max {
				heap.Push(&top, e)
			} else if e.Hits > top[0].Hits {
				top[0] = e
				heap.Fix(&top, 0)
			}
		} else {
			all = append(all, e)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	entries := all
	if max > 0 {
		entries = []ExportEntry(top)
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Hits > entries[j].Hits
	})
	return entries, nil
}

// Export returns entries with at least minHits hits, used by the
// master-store synchronization of Section IV-B ("periodically
// synchronizes the popular (i.e., frequently appeared) results").
func (s *Store) Export(minHits int64) ([]ExportEntry, error) {
	var out []ExportEntry
	err := s.eng.Iterate(func(tag mle.Tag, rec storeengine.Record) bool {
		if rec.Hits < minHits {
			return true
		}
		out = append(out, ExportEntry{
			Tag: tag,
			Sealed: mle.Sealed{
				Challenge:  rec.Challenge,
				WrappedKey: rec.WrappedKey,
				Blob:       rec.Blob,
			},
			Hits:  rec.Hits,
			Owner: rec.Owner,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
