// Virusscan: an online virus-scanner scenario (the paper's motivating
// example for Case 3). Many users submit files to a scanning service;
// popular files are submitted repeatedly, so the expensive
// scan-against-thousands-of-rules computation is deduplicated. A
// second scanner process connects to the SAME store over TCP with the
// attested protocol and reuses results it never computed.
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"speed"
	"speed/internal/pattern"
	"speed/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "virusscan:", err)
		os.Exit(1)
	}
}

func run() error {
	// The shared ResultStore deployment, served over TCP.
	storeSys, err := speed.NewSystem()
	if err != nil {
		return err
	}
	defer storeSys.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := storeSys.Serve(ln)
	defer srv.Close()
	fmt.Printf("resultstore on %s (measurement %v)\n\n", srv.Addr(), storeSys.StoreMeasurement())

	// The scanning engine: ~2,000 synthetic Snort-style rules.
	gen := workload.New(7)
	rules := gen.SnortRules(2000)
	rs, err := pattern.CompileRules(rules)
	if err != nil {
		return err
	}
	engineCode := []byte("clamav-like engine build 1047")

	newScanner := func(name string) (*speed.App, *speed.Deduplicable[[]byte, []byte], error) {
		app, err := storeSys.NewAppWithConfig(name, []byte(name), speed.AppConfig{
			RemoteStoreAddr:        srv.Addr().String(),
			RemoteStoreMeasurement: storeSys.StoreMeasurement(),
		})
		if err != nil {
			return nil, nil, err
		}
		app.RegisterLibrary("scan-engine", "1047", engineCode)
		scan, err := speed.NewDeduplicable(app,
			speed.FuncDesc{Library: "scan-engine", Version: "1047", Signature: "scan(file) -> rule ids"},
			func(file []byte) ([]byte, error) {
				return pattern.EncodeScanResult(rs.Scan(file)), nil
			},
			speed.WithInputCodec[[]byte, []byte](speed.BytesCodec{}),
			speed.WithOutputCodec[[]byte, []byte](speed.BytesCodec{}),
		)
		return app, scan, err
	}

	appA, scanA, err := newScanner("scanner-frontend-1")
	if err != nil {
		return err
	}
	defer appA.Close()
	appB, scanB, err := newScanner("scanner-frontend-2")
	if err != nil {
		return err
	}
	defer appB.Close()

	// 30 submissions drawn from 6 distinct files (popular files
	// repeat, Zipf-skewed), alternating between the two frontends.
	files := workload.DupStream(gen, 30, 6, func(i int) []byte {
		return gen.Packet(128<<10, rules, 0.4)
	})

	var computedTime, reusedTime time.Duration
	var computed, reused int
	for i, f := range files {
		scan, who := scanA, "frontend-1"
		if i%2 == 1 {
			scan, who = scanB, "frontend-2"
		}
		start := time.Now()
		res, outcome, err := scan.CallOutcome(f)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		ids, err := pattern.DecodeScanResult(res)
		if err != nil {
			return err
		}
		verdict := "CLEAN"
		if len(ids) > 0 {
			verdict = fmt.Sprintf("FLAGGED(%d rules)", len(ids))
		}
		fmt.Printf("submission %2d  %-11s %-10v %-18s %v\n",
			i, who, outcome, verdict, elapsed.Round(10*time.Microsecond))
		if outcome == speed.OutcomeReused {
			reused++
			reusedTime += elapsed
		} else {
			computed++
			computedTime += elapsed
		}
	}

	fmt.Printf("\ncomputed %d scans in %v (avg %v)\n",
		computed, computedTime.Round(time.Millisecond),
		(computedTime / time.Duration(computed)).Round(10*time.Microsecond))
	if reused > 0 {
		avgReuse := reusedTime / time.Duration(reused)
		fmt.Printf("reused   %d scans in %v (avg %v)\n",
			reused, reusedTime.Round(time.Millisecond), avgReuse.Round(10*time.Microsecond))
		avgComp := computedTime / time.Duration(computed)
		fmt.Printf("per-scan speedup on reuse: %.0fx\n", float64(avgComp)/float64(avgReuse))
	}
	fmt.Printf("store: %+v\n", storeSys.StoreStats())
	return nil
}
