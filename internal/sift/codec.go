package sift

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrMalformedKeypoints is returned when decoding invalid keypoint
// bytes.
var ErrMalformedKeypoints = errors.New("sift: malformed keypoint encoding")

const keypointSize = 8*4 + 4 + 4 + 128 // 4 float64s, 2 int32s, descriptor

// EncodeKeypoints serialises keypoints into a deterministic binary
// form, used as the deduplicable result representation.
func EncodeKeypoints(kps []Keypoint) []byte {
	buf := make([]byte, 4+len(kps)*keypointSize)
	binary.BigEndian.PutUint32(buf, uint32(len(kps)))
	off := 4
	putF := func(v float64) {
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	for _, kp := range kps {
		putF(kp.X)
		putF(kp.Y)
		putF(kp.Sigma)
		putF(kp.Orientation)
		binary.BigEndian.PutUint32(buf[off:], uint32(kp.Octave))
		off += 4
		binary.BigEndian.PutUint32(buf[off:], uint32(kp.Level))
		off += 4
		copy(buf[off:], kp.Descriptor[:])
		off += 128
	}
	return buf
}

// DecodeKeypoints parses the form produced by EncodeKeypoints.
func DecodeKeypoints(b []byte) ([]Keypoint, error) {
	if len(b) < 4 {
		return nil, ErrMalformedKeypoints
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < 0 || len(b) != 4+n*keypointSize {
		return nil, ErrMalformedKeypoints
	}
	kps := make([]Keypoint, n)
	off := 4
	getF := func() float64 {
		v := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		off += 8
		return v
	}
	for i := range kps {
		kps[i].X = getF()
		kps[i].Y = getF()
		kps[i].Sigma = getF()
		kps[i].Orientation = getF()
		kps[i].Octave = int(int32(binary.BigEndian.Uint32(b[off:])))
		off += 4
		kps[i].Level = int(int32(binary.BigEndian.Uint32(b[off:])))
		off += 4
		copy(kps[i].Descriptor[:], b[off:off+128])
		off += 128
	}
	return kps, nil
}
