package wire

import (
	"crypto/ecdh"
	"crypto/rand"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
)

// FuzzUnmarshal: arbitrary bytes must never panic the message decoder,
// and decodable messages must re-marshal to an equivalent message.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(GetRequest{Tag: mle.Tag{1, 2, 3}}))
	f.Add(Marshal(GetResponse{Found: true, Sealed: mle.Sealed{
		Challenge:  []byte("rrrr"),
		WrappedKey: []byte("kkkk"),
		Blob:       []byte("blob"),
	}}))
	f.Add(Marshal(PutRequest{Tag: mle.Tag{9}, Replace: true, Sealed: mle.Sealed{Blob: []byte("b")}}))
	f.Add(Marshal(PutResponse{OK: false, Err: "quota"}))
	f.Add(Marshal(BatchGetRequest{Tags: []mle.Tag{{1}, {2}}}))
	f.Add(Marshal(BatchGetResponse{Results: []GetResult{
		{Found: true, Sealed: mle.Sealed{Blob: []byte("b")}},
		{Found: false},
	}}))
	f.Add(Marshal(BatchPutRequest{Items: []PutItem{
		{Tag: mle.Tag{3}, Sealed: mle.Sealed{Blob: []byte("b")}, Replace: true},
	}}))
	f.Add(Marshal(BatchPutResponse{Results: []PutResult{{OK: true}, {OK: false, Err: "quota"}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(Marshal(msg))
		if err != nil {
			t.Fatalf("re-unmarshal of valid message failed: %v", err)
		}
		if again.Kind() != msg.Kind() {
			t.Fatalf("kind changed across round trip: %v -> %v", msg.Kind(), again.Kind())
		}
	})
}

// FuzzParseHello: arbitrary handshake frames must never panic.
func FuzzParseHello(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	// A structurally valid hello advertising an unknown future protocol
	// version, so mutations explore the negotiation byte.
	p := enclave.NewPlatform(enclave.Config{})
	if e, err := p.Create("fuzz", []byte("code")); err == nil {
		if priv, err := ecdh.X25519().GenerateKey(rand.Reader); err == nil {
			data := helloData(priv, ProtocolV2, DefaultFeatures)
			data[32] = 9
			if h, err := makeHello(e, enclave.Measurement{}, data); err == nil {
				f.Add(h.marshal())
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = parseHello(data)
	})
}

// FuzzNegotiate: version negotiation must always land on a version this
// build speaks, never exceed our own offer, and agree with the echo the
// server would send back.
func FuzzNegotiate(f *testing.F) {
	f.Add(2, byte(2))
	f.Add(1, byte(0))
	f.Add(2, byte(9))
	f.Add(0, byte(1))
	f.Fuzz(func(t *testing.T, ours int, peer byte) {
		ours = clampVersion(ours)
		var peerData [64]byte
		peerData[32] = peer
		got := negotiate(ours, peerData)
		if got < ProtocolV1 || got > MaxProtocol {
			t.Fatalf("negotiate(%d, peer=%d) = %d, outside [%d, %d]", ours, peer, got, ProtocolV1, MaxProtocol)
		}
		if got > ours {
			t.Fatalf("negotiate(%d, peer=%d) = %d exceeds our offer", ours, peer, got)
		}
		// The server echoes the agreed version; re-negotiating against
		// that echo must be stable on both ends.
		var echo [64]byte
		echo[32] = byte(got)
		if again := negotiate(ours, echo); again != got {
			t.Fatalf("negotiation unstable: %d then %d", got, again)
		}
		if peer >= 1 && int(peer) <= MaxProtocol {
			if client := negotiate(int(peer), echo); client != got {
				t.Fatalf("peer offering %d would settle on %d, server on %d", peer, client, got)
			}
		}
	})
}

// FuzzUnmarshalEnvelope: arbitrary v2 frames must never panic, and
// decodable envelopes must round trip with the request ID intact.
func FuzzUnmarshalEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalEnvelope(0, GetRequest{Tag: mle.Tag{1}}))
	f.Add(MarshalEnvelope(^uint64(0), BatchGetRequest{Tags: []mle.Tag{{2}, {3}}}))
	f.Add(MarshalEnvelope(42, BatchPutResponse{Results: []PutResult{{OK: true}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		id, msg, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		id2, msg2, err := UnmarshalEnvelope(MarshalEnvelope(id, msg))
		if err != nil {
			t.Fatalf("re-unmarshal of valid envelope failed: %v", err)
		}
		if id2 != id {
			t.Fatalf("request ID changed across round trip: %d -> %d", id, id2)
		}
		if msg2.Kind() != msg.Kind() {
			t.Fatalf("kind changed across round trip: %v -> %v", msg.Kind(), msg2.Kind())
		}
	})
}
