package dedup

import (
	"bytes"
	"math/rand"
	"testing"

	"speed/internal/chunk"
	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/store"
)

// chunkTestThreshold keeps the chunked tests fast while still
// splitting results into many chunks with the default geometry.
const chunkTestThreshold = 32 << 10

// newChunkStore builds a platform and a shared store for multi-runtime
// chunking tests.
func newChunkStore(t *testing.T) (*enclave.Platform, *store.Store) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store enclave: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return p, st
}

// newChunkRuntime attaches a fresh runtime (own enclave, own chunk
// cache) to the shared store. threshold 0 builds a pre-chunking
// runtime.
func newChunkRuntime(t *testing.T, p *enclave.Platform, st *store.Store, name string, threshold int) *Runtime {
	t.Helper()
	appEnc, err := p.Create(name, []byte("app code"))
	if err != nil {
		t.Fatalf("create %s enclave: %v", name, err)
	}
	rt, err := NewRuntime(Config{
		Enclave:        appEnc,
		Client:         NewLocalClient(st, appEnc.Measurement()),
		ChunkThreshold: threshold,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRuntime(%s): %v", name, err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	rt.Registry().RegisterLibrary("zlib", "1.2.11", []byte("zlib code"))
	return rt
}

func chunkFuncID(t *testing.T, rt *Runtime) mle.FuncID {
	t.Helper()
	id, err := rt.Resolve(deflateDesc)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return id
}

// chunkResult derives a deterministic pseudo-random result from a seed
// — the stand-in for a large deterministic computation.
func chunkResult(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestChunkedPutThenConvergentReuse is the tentpole property: runtime A
// computes a large result and stores it chunk-wise; an independent
// runtime B (fresh enclave, fresh RCE state, empty chunk cache) issuing
// the same call reassembles it from the manifest without recomputing.
func TestChunkedPutThenConvergentReuse(t *testing.T) {
	p, st := newChunkStore(t)
	a := newChunkRuntime(t, p, st, "appA", chunkTestThreshold)
	b := newChunkRuntime(t, p, st, "appB", chunkTestThreshold)
	id := chunkFuncID(t, a)

	input := []byte("render document 1")
	want := chunkResult(1, 200<<10)
	compute := func([]byte) ([]byte, error) { return append([]byte(nil), want...), nil }

	got, outcome, err := a.Execute(id, input, compute)
	if err != nil {
		t.Fatalf("A Execute: %v", err)
	}
	if outcome != OutcomeComputed || !bytes.Equal(got, want) {
		t.Fatalf("A: outcome %v, equal %v", outcome, bytes.Equal(got, want))
	}
	if s := a.Stats(); s.ChunkedPuts != 1 {
		t.Fatalf("A ChunkedPuts = %d, want 1", s.ChunkedPuts)
	}

	bCalls := 0
	got, outcome, err = b.Execute(id, input, func(in []byte) ([]byte, error) {
		bCalls++
		return compute(in)
	})
	if err != nil {
		t.Fatalf("B Execute: %v", err)
	}
	if outcome != OutcomeReused {
		t.Fatalf("B outcome = %v, want reused", outcome)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("B reassembled a different result")
	}
	if bCalls != 0 {
		t.Fatalf("B recomputed (%d calls) instead of reusing", bCalls)
	}
	s := b.Stats()
	if s.ManifestReuses != 1 {
		t.Fatalf("B ManifestReuses = %d, want 1", s.ManifestReuses)
	}
	if s.ChunksFetched == 0 {
		t.Fatal("B fetched no chunks; manifest path not exercised")
	}
	if s.VerifyFailures != 0 {
		t.Fatalf("B VerifyFailures = %d, want 0 (manifest is not a failure)", s.VerifyFailures)
	}
}

// TestChunkedOverlapSharesChunks: two runtimes computing overlapping
// results derive identical tags for the shared chunks, so the second
// upload skips them (probed via HAS_BATCH against the shared store)
// and the store keeps one sealed copy of the overlap.
func TestChunkedOverlapSharesChunks(t *testing.T) {
	p, st := newChunkStore(t)
	a := newChunkRuntime(t, p, st, "appA", chunkTestThreshold)
	b := newChunkRuntime(t, p, st, "appB", chunkTestThreshold)
	id := chunkFuncID(t, a)

	common := chunkResult(7, 128<<10)
	res1 := append(append(chunkResult(8, 32<<10), common...), chunkResult(9, 32<<10)...)
	res2 := append(append(chunkResult(10, 32<<10), common...), chunkResult(11, 32<<10)...)

	if _, _, err := a.Execute(id, []byte("doc1"), func([]byte) ([]byte, error) {
		return append([]byte(nil), res1...), nil
	}); err != nil {
		t.Fatalf("A Execute: %v", err)
	}
	before := st.Stats().BlobBytes
	if _, _, err := b.Execute(id, []byte("doc2"), func([]byte) ([]byte, error) {
		return append([]byte(nil), res2...), nil
	}); err != nil {
		t.Fatalf("B Execute: %v", err)
	}
	added := st.Stats().BlobBytes - before

	if s := b.Stats(); s.ChunksSkipped == 0 {
		t.Fatalf("B skipped no chunk uploads despite %dKiB overlap", len(common)>>10)
	}
	// The second result is ~192KiB but only ~64KiB of it is new; allow
	// generous slack for boundary chunks and sealing overhead.
	if added >= int64(len(res2)) {
		t.Fatalf("second upload added %d bytes, no dedup against %d-byte result", added, len(res2))
	}
}

// TestChunkThresholdKeepsSmallResultsWhole: a result below the
// threshold takes the whole-result path — no manifest, no chunk
// entries, and an independent runtime decrypts it directly.
func TestChunkThresholdKeepsSmallResultsWhole(t *testing.T) {
	p, st := newChunkStore(t)
	a := newChunkRuntime(t, p, st, "appA", chunkTestThreshold)
	b := newChunkRuntime(t, p, st, "appB", chunkTestThreshold)
	id := chunkFuncID(t, a)

	input := []byte("small call")
	want := chunkResult(3, 4<<10)
	if _, _, err := a.Execute(id, input, func([]byte) ([]byte, error) {
		return append([]byte(nil), want...), nil
	}); err != nil {
		t.Fatalf("A Execute: %v", err)
	}
	if s := a.Stats(); s.ChunkedPuts != 0 {
		t.Fatalf("A ChunkedPuts = %d for a below-threshold result", s.ChunkedPuts)
	}
	if n := st.Len(); n != 1 {
		t.Fatalf("store holds %d entries, want 1 (whole result only)", n)
	}
	got, outcome, err := b.Execute(id, input, func([]byte) ([]byte, error) {
		t.Fatal("B recomputed a stored small result")
		return nil, nil
	})
	if err != nil || outcome != OutcomeReused || !bytes.Equal(got, want) {
		t.Fatalf("B: outcome %v err %v", outcome, err)
	}
	if s := b.Stats(); s.ManifestReuses != 0 {
		t.Fatalf("B ManifestReuses = %d on the whole-result path", s.ManifestReuses)
	}
}

// TestTamperedChunkRecoversLoudly: corrupting one sealed chunk in the
// store must fail reassembly (digest/AEAD verification), force a loud
// recompute-and-replace, and heal the store for later readers.
func TestTamperedChunkRecoversLoudly(t *testing.T) {
	p, st := newChunkStore(t)
	a := newChunkRuntime(t, p, st, "appA", chunkTestThreshold)
	id := chunkFuncID(t, a)

	input := []byte("tamper target")
	want := chunkResult(5, 150<<10)
	if _, _, err := a.Execute(id, input, func([]byte) ([]byte, error) {
		return append([]byte(nil), want...), nil
	}); err != nil {
		t.Fatalf("A Execute: %v", err)
	}

	// Recompute the chunk tags the same way the runtime does and
	// overwrite one chunk's sealed entry with garbage.
	ck, err := chunk.NewChunker(chunk.Config{})
	if err != nil {
		t.Fatalf("NewChunker: %v", err)
	}
	chunks := ck.Split(want)
	if len(chunks) < 2 {
		t.Fatalf("result split into %d chunks; test needs several", len(chunks))
	}
	cid := chunk.ContentFuncID(id)
	victim := chunk.Tag(cid, chunk.Hash(chunks[len(chunks)/2]))
	if _, err := st.PutReplace(a.Enclave().Measurement(), victim, mle.Sealed{
		Challenge:  []byte("rrrrrrrrrrrrrrrr"),
		WrappedKey: []byte("kkkkkkkkkkkkkkkk"),
		Blob:       []byte("garbage ciphertext"),
	}); err != nil {
		t.Fatalf("tamper PutReplace: %v", err)
	}

	// A fresh runtime (empty chunk cache) must detect the tamper,
	// recompute, and replace the damaged entries.
	b := newChunkRuntime(t, p, st, "appB", chunkTestThreshold)
	bCalls := 0
	got, outcome, err := b.Execute(id, input, func([]byte) ([]byte, error) {
		bCalls++
		return append([]byte(nil), want...), nil
	})
	if err != nil {
		t.Fatalf("B Execute: %v", err)
	}
	if outcome != OutcomeRecomputed || bCalls != 1 || !bytes.Equal(got, want) {
		t.Fatalf("B: outcome %v, calls %d", outcome, bCalls)
	}
	if s := b.Stats(); s.VerifyFailures != 1 {
		t.Fatalf("B VerifyFailures = %d, want 1", s.VerifyFailures)
	}

	// The replace healed the chunk: a third fresh runtime reuses.
	c := newChunkRuntime(t, p, st, "appC", chunkTestThreshold)
	got, outcome, err = c.Execute(id, input, func([]byte) ([]byte, error) {
		t.Fatal("C recomputed after the store was healed")
		return nil, nil
	})
	if err != nil || outcome != OutcomeReused || !bytes.Equal(got, want) {
		t.Fatalf("C: outcome %v err %v", outcome, err)
	}
}

// TestLegacyRuntimeHealsManifestEntry: a pre-chunking runtime hitting a
// manifest entry sees a clean verification failure (it cannot decrypt
// the manifest), recomputes, and replaces the primary tag with a whole
// result — and the chunk-aware runtime still reuses that.
func TestLegacyRuntimeHealsManifestEntry(t *testing.T) {
	p, st := newChunkStore(t)
	a := newChunkRuntime(t, p, st, "appA", chunkTestThreshold)
	legacy := newChunkRuntime(t, p, st, "appLegacy", 0)
	id := chunkFuncID(t, a)

	input := []byte("mixed fleet")
	want := chunkResult(6, 100<<10)
	compute := func([]byte) ([]byte, error) { return append([]byte(nil), want...), nil }
	if _, _, err := a.Execute(id, input, compute); err != nil {
		t.Fatalf("A Execute: %v", err)
	}

	got, outcome, err := legacy.Execute(id, input, compute)
	if err != nil {
		t.Fatalf("legacy Execute: %v", err)
	}
	if outcome != OutcomeRecomputed || !bytes.Equal(got, want) {
		t.Fatalf("legacy: outcome %v, want recomputed", outcome)
	}

	// The primary tag now holds a whole result; the chunk-aware runtime
	// decrypts it directly (no manifest path).
	b := newChunkRuntime(t, p, st, "appB", chunkTestThreshold)
	got, outcome, err = b.Execute(id, input, func([]byte) ([]byte, error) {
		t.Fatal("B recomputed a healed whole-result entry")
		return nil, nil
	})
	if err != nil || outcome != OutcomeReused || !bytes.Equal(got, want) {
		t.Fatalf("B: outcome %v err %v", outcome, err)
	}
	if s := b.Stats(); s.ManifestReuses != 0 {
		t.Fatalf("B took the manifest path (%d) for a whole-result entry", s.ManifestReuses)
	}
}

// TestChunkedBatchReuse: ExecuteBatch's verify loop takes the same
// manifest fallback as Execute.
func TestChunkedBatchReuse(t *testing.T) {
	p, st := newChunkStore(t)
	a := newChunkRuntime(t, p, st, "appA", chunkTestThreshold)
	b := newChunkRuntime(t, p, st, "appB", chunkTestThreshold)
	id := chunkFuncID(t, a)

	inputs := [][]byte{[]byte("batch doc 1"), []byte("batch doc 2")}
	results := map[string][]byte{
		"batch doc 1": chunkResult(21, 80<<10),
		"batch doc 2": chunkResult(22, 80<<10),
	}
	compute := func(in []byte) ([]byte, error) {
		return append([]byte(nil), results[string(in)]...), nil
	}
	if _, err := a.ExecuteBatch(id, inputs, compute); err != nil {
		t.Fatalf("A ExecuteBatch: %v", err)
	}

	res, err := b.ExecuteBatch(id, inputs, func(in []byte) ([]byte, error) {
		t.Fatalf("B recomputed %q", in)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("B ExecuteBatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Outcome != OutcomeReused {
			t.Fatalf("item %d: outcome %v err %v", i, r.Outcome, r.Err)
		}
		if !bytes.Equal(r.Result, results[string(inputs[i])]) {
			t.Fatalf("item %d: wrong result", i)
		}
	}
	if s := b.Stats(); s.ManifestReuses != 2 {
		t.Fatalf("B ManifestReuses = %d, want 2", s.ManifestReuses)
	}
}
