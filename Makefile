# Development targets. `make check` is the gate every change must pass:
# vet, the speedlint invariant suite, and the full test suite under the
# race detector, which keeps the coalescing-path fixes (panic cleanup,
# flight-result aliasing) fixed.

GO ?= go
GOFMT ?= gofmt

.PHONY: check build fmt vet lint test race bench bench-quick bench-overhead fuzz

check: vet lint race

build:
	$(GO) build ./...

# Formatting drift gate: fails listing any file gofmt would rewrite.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# SPEED-specific invariants: trust boundary, key hygiene, atomic/plain
# mixing, unbounded network waits, wire kind/codec symmetry.
lint:
	$(GO) run ./cmd/speedlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-quick:
	$(GO) run ./cmd/speedbench -quick

# Refresh the committed telemetry reports: per-phase latency quantiles
# and outcome counters captured while the fig5/fig6 experiments run.
bench:
	$(GO) run ./cmd/speedbench -quick -exp fig5 -metrics-out BENCH_fig5.json
	$(GO) run ./cmd/speedbench -quick -exp fig6 -metrics-out BENCH_fig6.json
	$(GO) run ./cmd/speedbench -quick -exp concurrency -metrics-out BENCH_concurrency.json
	$(GO) run ./cmd/speedbench -quick -exp cluster -metrics-out BENCH_cluster.json

# Instrumentation overhead gate: BenchmarkExecuteHitTelemetry must stay
# within 5% of BenchmarkExecuteHit (deployment-default SGX costs).
bench-overhead:
	$(GO) test -run xxx -bench 'BenchmarkExecuteHit' -benchtime 1s ./internal/dedup/

# Short fuzz pass over the wire codecs. Go runs one fuzz target per
# invocation, so each target gets its own run.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzParseHello$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzUnmarshalEnvelope$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzNegotiate$$' -fuzztime $(FUZZTIME) ./internal/wire/
