package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"testing"

	"speed/internal/enclave"
	"speed/internal/mle"
)

func TestBatchMessageRoundTrips(t *testing.T) {
	sealed := mle.Sealed{
		Challenge:  []byte("rrrrrrrrrrrrrrrr"),
		WrappedKey: []byte("kkkkkkkkkkkkkkkk"),
		Blob:       []byte("ciphertext blob bytes"),
	}
	msgs := []Message{
		BatchGetRequest{},
		BatchGetRequest{Tags: []mle.Tag{mustTag(0x01), mustTag(0x02), mustTag(0x03)}},
		BatchGetResponse{},
		BatchGetResponse{Results: []GetResult{
			{Found: false},
			{Found: true, Sealed: sealed},
		}},
		BatchPutRequest{Items: []PutItem{
			{Tag: mustTag(0xAA), Sealed: sealed},
			{Tag: mustTag(0xBB), Sealed: sealed, Replace: true},
		}},
		BatchPutResponse{Results: []PutResult{
			{OK: true},
			{OK: false, Err: "quota exceeded"},
		}},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Errorf("%v: Unmarshal: %v", m.Kind(), err)
			continue
		}
		// Empty slices decode as non-nil empty; normalise for DeepEqual.
		if !reflect.DeepEqual(got, m) && !batchEquivalent(got, m) {
			t.Errorf("%v: round trip = %#v, want %#v", m.Kind(), got, m)
		}
	}
}

// batchEquivalent treats nil and empty element slices as equal.
func batchEquivalent(a, b Message) bool {
	switch am := a.(type) {
	case BatchGetRequest:
		bm, ok := b.(BatchGetRequest)
		return ok && len(am.Tags) == 0 && len(bm.Tags) == 0
	case BatchGetResponse:
		bm, ok := b.(BatchGetResponse)
		return ok && len(am.Results) == 0 && len(bm.Results) == 0
	case BatchPutRequest:
		bm, ok := b.(BatchPutRequest)
		return ok && len(am.Items) == 0 && len(bm.Items) == 0
	case BatchPutResponse:
		bm, ok := b.(BatchPutResponse)
		return ok && len(am.Results) == 0 && len(bm.Results) == 0
	}
	return false
}

func TestBatchUnmarshalRejectsMalformed(t *testing.T) {
	overCount := binary.BigEndian.AppendUint32([]byte{byte(KindBatchGetRequest)}, MaxBatchItems+1)
	tests := []struct {
		name string
		b    []byte
	}{
		{"get request missing count", []byte{byte(KindBatchGetRequest), 0, 0}},
		{"get request count over limit", overCount},
		{"get request short tags", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindBatchGetRequest)}, 2),
			make([]byte, mle.TagSize)...)},
		{"get request trailing bytes", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindBatchGetRequest)}, 1),
			make([]byte, mle.TagSize+1)...)},
		{"get response truncated result", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindBatchGetResponse)}, 1),
			1)},
		{"get response bad bool", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindBatchGetResponse)}, 1),
			7)},
		{"put request short item", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindBatchPutRequest)}, 1),
			1, 2, 3)},
		{"put response truncated", append(
			binary.BigEndian.AppendUint32([]byte{byte(KindBatchPutResponse)}, 2),
			1, 0, 0, 0, 0)},
	}
	for _, tt := range tests {
		if _, err := Unmarshal(tt.b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: Unmarshal = %v, want ErrMalformed", tt.name, err)
		}
	}
}

func TestBatchTrailingBytesRejected(t *testing.T) {
	for _, m := range []Message{
		BatchGetRequest{Tags: []mle.Tag{mustTag(1)}},
		BatchGetResponse{Results: []GetResult{{Found: true, Sealed: mle.Sealed{Blob: []byte("b")}}}},
		BatchPutRequest{Items: []PutItem{{Tag: mustTag(2), Sealed: mle.Sealed{Blob: []byte("b")}}}},
		BatchPutResponse{Results: []PutResult{{OK: true}}},
	} {
		b := append(Marshal(m), 0xFF)
		if _, err := Unmarshal(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%v with trailing byte: Unmarshal = %v, want ErrMalformed", m.Kind(), err)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	msgs := []Message{
		GetRequest{Tag: mustTag(0x11)},
		BatchGetRequest{Tags: []mle.Tag{mustTag(0x22)}},
		PutResponse{OK: true},
	}
	for i, m := range msgs {
		id := uint64(i) * 0x0101010101010101
		gotID, gotMsg, err := UnmarshalEnvelope(MarshalEnvelope(id, m))
		if err != nil {
			t.Fatalf("UnmarshalEnvelope: %v", err)
		}
		if gotID != id {
			t.Errorf("request ID = %d, want %d", gotID, id)
		}
		if gotMsg.Kind() != m.Kind() {
			t.Errorf("kind = %v, want %v", gotMsg.Kind(), m.Kind())
		}
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 2, 3}},
		{"header only", make([]byte, 8)},
		{"bad body", append(make([]byte, 8), 0xEE, 1)},
	}
	for _, tt := range tests {
		if _, _, err := UnmarshalEnvelope(tt.b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: UnmarshalEnvelope = %v, want ErrMalformed", tt.name, err)
		}
	}
}

// versionPair establishes a channel with explicit per-side protocol
// offers and returns (client, server).
func versionPair(t *testing.T, clientMax, serverMax int) (*Channel, *Channel) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	app, _ := p.Create("app", []byte("app code"))
	store, _ := p.Create("store", []byte("store code"))
	cConn, sConn := net.Pipe()
	type res struct {
		ch  *Channel
		err error
	}
	serverDone := make(chan res, 1)
	go func() {
		ch, err := ServerHandshakeVersion(sConn, store, nil, nil, serverMax)
		serverDone <- res{ch, err}
	}()
	client, err := ClientHandshakeVersion(cConn, app, store.Measurement(), nil, clientMax)
	sr := <-serverDone
	if err != nil {
		t.Fatalf("ClientHandshakeVersion: %v", err)
	}
	if sr.err != nil {
		t.Fatalf("ServerHandshakeVersion: %v", sr.err)
	}
	return client, sr.ch
}

func TestVersionNegotiation(t *testing.T) {
	tests := []struct {
		name                 string
		clientMax, serverMax int
		want                 int
	}{
		{"v2 client, v2 server", ProtocolV2, ProtocolV2, ProtocolV2},
		{"v1 client, v2 server", ProtocolV1, ProtocolV2, ProtocolV1},
		{"v2 client, v1 server", ProtocolV2, ProtocolV1, ProtocolV1},
		{"v1 client, v1 server", ProtocolV1, ProtocolV1, ProtocolV1},
		{"zero offers clamp to v1", 0, 0, ProtocolV1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			client, server := versionPair(t, tt.clientMax, tt.serverMax)
			defer client.Close()
			defer server.Close()
			if client.Version() != tt.want {
				t.Errorf("client version = %d, want %d", client.Version(), tt.want)
			}
			if server.Version() != tt.want {
				t.Errorf("server version = %d, want %d", server.Version(), tt.want)
			}
		})
	}
}

func TestNegotiatedChannelStillCarriesTraffic(t *testing.T) {
	// A mixed-version pair must agree on v1 and exchange messages with
	// the plain serial discipline.
	client, server := versionPair(t, ProtocolV2, ProtocolV1)
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		msg, err := server.RecvMessage()
		if err != nil {
			done <- err
			return
		}
		if _, ok := msg.(GetRequest); !ok {
			done <- errors.New("server received wrong message type")
			return
		}
		done <- server.SendMessage(GetResponse{Found: false})
	}()
	if err := client.SendMessage(GetRequest{Tag: mustTag(0x77)}); err != nil {
		t.Fatalf("SendMessage: %v", err)
	}
	if _, err := client.RecvMessage(); err != nil {
		t.Fatalf("RecvMessage: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}
