package dedup

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"speed/internal/enclave"
	"speed/internal/store"
	"speed/internal/wire"
)

// pingEnv is remoteEnv with a protocol-pinned client.
func newPingEnv(t *testing.T, maxProtocol int) (*store.Store, *RemoteClient) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, err := p.Create("app", []byte("app code"))
	if err != nil {
		t.Fatalf("create app: %v", err)
	}
	storeEnc, err := p.Create("store", []byte("store code"))
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	client, err := DialConfig(ln.Addr().String(), appEnc, storeEnc.Measurement(),
		RemoteConfig{MaxProtocol: maxProtocol})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return st, client
}

// TestPingDoesNotPolluteStats is the point of Ping over a sentinel GET:
// a health probe must not fabricate dictionary traffic, on either
// protocol version.
func TestPingDoesNotPolluteStats(t *testing.T) {
	for _, tc := range []struct {
		name     string
		protocol int
	}{
		{"v2 mux", wire.ProtocolV2},
		{"v1 serial", wire.ProtocolV1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, client := newPingEnv(t, tc.protocol)
			for i := 0; i < 3; i++ {
				if err := client.Ping(); err != nil {
					t.Fatalf("Ping #%d: %v", i, err)
				}
			}
			s := st.Stats()
			if s.Gets != 0 || s.Puts != 0 {
				t.Errorf("pings polluted stats: gets=%d puts=%d, want 0/0", s.Gets, s.Puts)
			}
		})
	}
}

func TestPingFailsWhenStoreDown(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	appEnc, _ := p.Create("app", []byte("app code"))
	storeEnc, _ := p.Create("store", []byte("store code"))
	// Grab a port that refuses connections: listen, note the address,
	// close again.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	client, err := DialConfig(addr, appEnc, storeEnc.Measurement(), RemoteConfig{
		Lazy:        true,
		DialTimeout: 200 * time.Millisecond,
		MaxRetries:  -1,
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer client.Close()
	if err := client.Ping(); err == nil {
		t.Fatal("Ping succeeded against a dead address")
	}
}

func TestLocalClientPing(t *testing.T) {
	p := enclave.NewPlatform(enclave.Config{})
	storeEnc, _ := p.Create("store", []byte("store code"))
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	client := NewLocalClient(st, enclave.Measurement{})
	if err := client.Ping(); err != nil {
		t.Fatalf("Ping on open store: %v", err)
	}
	st.Close()
	if err := client.Ping(); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Ping on closed store = %v, want ErrClosed", err)
	}
}
