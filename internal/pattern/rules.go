package pattern

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Rule is a Snort-like detection rule: every Contents literal must
// occur in the payload (multi-pattern pre-filter), and when PCRE is
// non-empty the regex must also match (confirmation stage).
type Rule struct {
	// ID is the rule identifier (like Snort's sid).
	ID int
	// Name is a human-readable message (like Snort's msg).
	Name string
	// Contents are the literal byte strings that must all be present.
	Contents [][]byte
	// NoCase makes content matching ASCII case-insensitive.
	NoCase bool
	// PCRE is an optional regular expression that must also match.
	PCRE string
	// PCRENoCase applies /i to the regex.
	PCRENoCase bool
}

// RuleSet is a compiled rule collection, immutable and safe for
// concurrent use by multiple scanning goroutines.
type RuleSet struct {
	rules []Rule

	// Two AC matchers: case-sensitive and folded, since rules differ.
	exact     *Matcher
	folded    *Matcher
	exactIdx  [][2]int // (rule, content) per exact pattern
	foldedIdx [][2]int

	regexes []*Regex // parallel to rules; nil when no PCRE
}

// CompileRules builds a RuleSet. Rules with invalid PCRE fail
// compilation; IDs must be unique.
func CompileRules(rules []Rule) (*RuleSet, error) {
	rs := &RuleSet{rules: make([]Rule, len(rules))}
	copy(rs.rules, rules)

	seen := make(map[int]bool, len(rules))
	var exactPats, foldedPats [][]byte
	rs.regexes = make([]*Regex, len(rules))
	for ri, r := range rs.rules {
		if seen[r.ID] {
			return nil, fmt.Errorf("pattern: duplicate rule id %d", r.ID)
		}
		seen[r.ID] = true
		if len(r.Contents) == 0 && r.PCRE == "" {
			return nil, fmt.Errorf("pattern: rule %d has no content and no pcre", r.ID)
		}
		for ci, c := range r.Contents {
			if len(c) == 0 {
				return nil, fmt.Errorf("pattern: rule %d has empty content", r.ID)
			}
			if r.NoCase {
				foldedPats = append(foldedPats, c)
				rs.foldedIdx = append(rs.foldedIdx, [2]int{ri, ci})
			} else {
				exactPats = append(exactPats, c)
				rs.exactIdx = append(rs.exactIdx, [2]int{ri, ci})
			}
		}
		if r.PCRE != "" {
			re, err := CompileRegex(r.PCRE, r.PCRENoCase)
			if err != nil {
				return nil, fmt.Errorf("pattern: rule %d: %w", r.ID, err)
			}
			rs.regexes[ri] = re
		}
	}
	rs.exact = NewMatcher(exactPats, false)
	rs.folded = NewMatcher(foldedPats, true)
	return rs, nil
}

// Len reports the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Scan returns the IDs of all rules matching the payload, sorted
// ascending. This is the operation deduplicated in Case 3: it is
// deterministic in the payload and the (fixed) rule set.
func (rs *RuleSet) Scan(payload []byte) []int {
	hits := make(map[int]int, 8) // rule index -> contents matched

	if len(rs.exactIdx) > 0 {
		for pi, present := range rs.exact.Contains(payload) {
			if present {
				hits[rs.exactIdx[pi][0]]++
			}
		}
	}
	if len(rs.foldedIdx) > 0 {
		for pi, present := range rs.folded.Contains(payload) {
			if present {
				hits[rs.foldedIdx[pi][0]]++
			}
		}
	}

	var out []int
	consider := func(ri int) {
		r := &rs.rules[ri]
		if re := rs.regexes[ri]; re != nil && !re.Match(payload) {
			return
		}
		out = append(out, r.ID)
	}
	for ri, n := range hits {
		if n == len(rs.rules[ri].Contents) {
			consider(ri)
		}
	}
	// Pure-PCRE rules have no contents and never enter hits.
	for ri, r := range rs.rules {
		if len(r.Contents) == 0 {
			consider(ri)
		}
	}
	sort.Ints(out)
	return out
}

// ScanSequential matches every rule individually against the payload —
// substring search per content, regex execution per PCRE — with no
// multi-pattern prefiltering. This mirrors the paper's Case 3
// methodology, which invoked libpcre's pcre_exec per rule over 3,700+
// Snort rules; the optimized Scan (Aho–Corasick prefilter) is what a
// modern IDS engine would do instead. Both produce identical results.
func (rs *RuleSet) ScanSequential(payload []byte) []int {
	var out []int
	folded := append([]byte(nil), payload...)
	lowerBytes(folded)
	for ri := range rs.rules {
		r := &rs.rules[ri]
		ok := true
		for _, c := range r.Contents {
			hay, needle := payload, c
			if r.NoCase {
				hay = folded
				needle = append([]byte(nil), c...)
				lowerBytes(needle)
			}
			if !containsSub(hay, needle) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if re := rs.regexes[ri]; re != nil && !re.Match(payload) {
			continue
		}
		out = append(out, r.ID)
	}
	sort.Ints(out)
	return out
}

// containsSub is a naive substring search, deliberately mirroring the
// per-rule scanning cost profile of the paper's baseline.
func containsSub(hay, needle []byte) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i] == needle[0] {
			j := 1
			for j < len(needle) && hay[i+j] == needle[j] {
				j++
			}
			if j == len(needle) {
				return true
			}
		}
	}
	return false
}

// ErrMalformedScanResult is returned when decoding invalid scan-result
// bytes.
var ErrMalformedScanResult = errors.New("pattern: malformed scan result encoding")

// EncodeScanResult serialises matched rule IDs deterministically, used
// as the deduplicable result representation.
func EncodeScanResult(ids []int) []byte {
	buf := make([]byte, 4+8*len(ids))
	binary.BigEndian.PutUint32(buf, uint32(len(ids)))
	for i, id := range ids {
		binary.BigEndian.PutUint64(buf[4+8*i:], uint64(id))
	}
	return buf
}

// DecodeScanResult parses the form produced by EncodeScanResult.
func DecodeScanResult(b []byte) ([]int, error) {
	if len(b) < 4 {
		return nil, ErrMalformedScanResult
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < 0 || len(b) != 4+8*n {
		return nil, ErrMalformedScanResult
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = int(binary.BigEndian.Uint64(b[4+8*i:]))
	}
	return ids, nil
}
