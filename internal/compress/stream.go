package compress

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming API: a block-based container over Compress/Decompress so
// arbitrarily large inputs can be (de)compressed with bounded memory,
// like zlib's deflate stream. The stream is a magic header followed by
// length-prefixed independently-compressed blocks and a zero-length
// terminator.

var streamMagic = [4]byte{'S', 'Z', 'S', '1'}

// DefaultBlockSize is the uncompressed block granularity of a stream.
const DefaultBlockSize = 256 << 10

// ErrStreamCorrupt is returned when a stream fails validation.
var ErrStreamCorrupt = errors.New("compress: corrupt stream")

// Writer compresses data written to it onto an underlying writer.
// Close must be called to flush the final block and the terminator.
type Writer struct {
	w         io.Writer
	buf       []byte
	blockSize int
	wroteHdr  bool
	closed    bool
}

var _ io.WriteCloser = (*Writer)(nil)

// NewWriter creates a stream writer with the default block size.
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, DefaultBlockSize)
}

// NewWriterSize creates a stream writer with an explicit uncompressed
// block size.
func NewWriterSize(w io.Writer, blockSize int) *Writer {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Writer{w: w, blockSize: blockSize, buf: make([]byte, 0, blockSize)}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("compress: write to closed Writer")
	}
	total := len(p)
	for len(p) > 0 {
		room := w.blockSize - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if len(w.buf) == w.blockSize {
			if err := w.flushBlock(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *Writer) header() error {
	if w.wroteHdr {
		return nil
	}
	w.wroteHdr = true
	if _, err := w.w.Write(streamMagic[:]); err != nil {
		return fmt.Errorf("write stream header: %w", err)
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if err := w.header(); err != nil {
		return err
	}
	block := Compress(w.buf)
	w.buf = w.buf[:0]
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(block)))
	if _, err := w.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("write block length: %w", err)
	}
	if _, err := w.w.Write(block); err != nil {
		return fmt.Errorf("write block: %w", err)
	}
	return nil
}

// Close flushes buffered data and writes the stream terminator. It
// does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	if err := w.header(); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], 0)
	if _, err := w.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("write stream terminator: %w", err)
	}
	return nil
}

// Reader decompresses a stream produced by Writer.
type Reader struct {
	r     *bufio.Reader
	cur   []byte
	err   error
	hdrOK bool
	atEOF bool
}

var _ io.Reader = (*Reader)(nil)

// NewReader creates a stream reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for len(r.cur) == 0 {
		if r.atEOF {
			r.err = io.EOF
			return 0, io.EOF
		}
		if err := r.nextBlock(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

func (r *Reader) nextBlock() error {
	if !r.hdrOK {
		var magic [4]byte
		if _, err := io.ReadFull(r.r, magic[:]); err != nil {
			return fmt.Errorf("%w: missing header", ErrStreamCorrupt)
		}
		if magic != streamMagic {
			return fmt.Errorf("%w: bad magic", ErrStreamCorrupt)
		}
		r.hdrOK = true
	}
	blockLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("%w: missing block length", ErrStreamCorrupt)
	}
	if blockLen == 0 {
		r.atEOF = true
		return nil
	}
	if blockLen > 256<<20 {
		return fmt.Errorf("%w: block too large", ErrStreamCorrupt)
	}
	block := make([]byte, blockLen)
	if _, err := io.ReadFull(r.r, block); err != nil {
		return fmt.Errorf("%w: truncated block", ErrStreamCorrupt)
	}
	data, err := Decompress(block)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStreamCorrupt, err)
	}
	r.cur = data
	return nil
}
