package compress

// MSB-first bit I/O used by the Huffman stage.

type bitWriter struct {
	buf  []byte
	cur  uint8
	nCur uint8
}

func (w *bitWriter) writeBits(code uint32, n uint8) {
	for i := int8(n) - 1; i >= 0; i-- {
		bit := uint8(code>>uint8(i)) & 1
		w.cur = w.cur<<1 | bit
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

func (w *bitWriter) flush() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

type bitReader struct {
	buf  []byte
	pos  int
	cur  uint8
	nCur uint8
}

func (r *bitReader) readBit() (uint32, error) {
	if r.nCur == 0 {
		if r.pos >= len(r.buf) {
			return 0, errCorrupt
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.nCur = 8
	}
	bit := uint32(r.cur >> 7)
	r.cur <<= 1
	r.nCur--
	return bit, nil
}
