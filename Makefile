# Development targets. `make check` is the gate every change must pass:
# vet, the speedlint invariant suite, and the full test suite under the
# race detector, which keeps the coalescing-path fixes (panic cleanup,
# flight-result aliasing) fixed.

GO ?= go
GOFMT ?= gofmt

.PHONY: check build fmt vet lint lint-fixtures test race bench bench-quick bench-overhead bench-hot bench-baseline bench-regress fuzz

check: vet lint race

build:
	$(GO) build ./...

# Formatting drift gate: fails listing any file gofmt would rewrite.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# SPEED-specific invariants: trust boundary, key hygiene, atomic/plain
# mixing, unbounded network waits, wire kind/codec symmetry, sealed-data
# taint, durability ordering, goroutine shutdown edges.
lint:
	$(GO) run ./cmd/speedlint ./...

# Just the analyzer-semantics fixture suites (the `// want` harness
# over internal/lint/testdata/src), without the rest of the tests.
lint-fixtures:
	$(GO) test ./internal/lint/ -run 'TestKeyZero|TestAtomicMix|TestDeadline|TestWireSym|TestEnclaveBoundary|TestSealFlow|TestFsyncOrder|TestGoroExit|TestIgnoreDirective'

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-quick:
	$(GO) run ./cmd/speedbench -quick

# Refresh the committed telemetry reports: per-phase latency quantiles
# and outcome counters captured while the fig5/fig6 experiments run.
bench:
	$(GO) run ./cmd/speedbench -quick -exp fig5 -metrics-out BENCH_fig5.json
	$(GO) run ./cmd/speedbench -quick -exp fig6 -metrics-out BENCH_fig6.json
	$(GO) run ./cmd/speedbench -quick -exp concurrency -metrics-out BENCH_concurrency.json
	$(GO) run ./cmd/speedbench -quick -exp cluster -metrics-out BENCH_cluster.json
	$(GO) run ./cmd/speedbench -quick -exp persist -metrics-out BENCH_persist.json
	$(GO) run ./cmd/speedbench -quick -exp chunk -metrics-out BENCH_chunk.json

# Instrumentation overhead gate: BenchmarkExecuteHitTelemetry must stay
# within 5% of BenchmarkExecuteHit (deployment-default SGX costs).
bench-overhead:
	$(GO) test -run xxx -bench 'BenchmarkExecuteHit' -benchtime 1s ./internal/dedup/

# Hot-path micro-benchmarks: the allocation-free wire/crypto fast path
# (Channel round trip, marshal, frame read, mle seal/open), the
# log engine's memtable-hit read, and the FastCDC chunker scan.
# -count 6 gives the regression gate a run-to-run spread for its
# significance test.
BENCH_HOT_PKGS := ./internal/wire ./internal/mle ./internal/store/logengine ./internal/chunk
BENCH_HOT_PATTERN := 'BenchmarkHot|BenchmarkChannelRoundTrip'
BENCH_HOT_COUNT ?= 6

bench-hot:
	$(GO) test -run '^$$' -bench $(BENCH_HOT_PATTERN) -benchmem -count $(BENCH_HOT_COUNT) $(BENCH_HOT_PKGS)

# Record a new hot-path baseline (bench/baseline.txt is checked in).
# Run on a quiet machine; commit the result together with the change
# that moved the numbers.
bench-baseline:
	$(GO) test -run '^$$' -bench $(BENCH_HOT_PATTERN) -benchmem -count $(BENCH_HOT_COUNT) $(BENCH_HOT_PKGS) | tee bench/baseline.txt

# Regression gate: rerun the hot-path benchmarks and compare against
# the checked-in baseline with cmd/benchgate (benchstat-style, no
# dependencies). allocs/op is held near-exactly; ns/op tolerates +30%
# by default (SPEED_BENCH_TIME_THRESHOLD to override) so cross-machine
# baselines don't flake.
bench-regress:
	$(GO) test -run '^$$' -bench $(BENCH_HOT_PATTERN) -benchmem -count $(BENCH_HOT_COUNT) $(BENCH_HOT_PKGS) | tee /tmp/speed-bench-new.txt
	$(GO) run ./cmd/benchgate -baseline bench/baseline.txt -new /tmp/speed-bench-new.txt

# Short fuzz pass over the wire codecs, the storage-engine WAL
# framing, the chunk manifest codec and the FastCDC chunker
# invariants. Go runs one fuzz target per invocation, so each target
# gets its own run.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzParseHello$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzUnmarshalEnvelope$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzNegotiate$$' -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz '^FuzzRecord$$' -fuzztime $(FUZZTIME) ./internal/store/logengine/
	$(GO) test -run xxx -fuzz '^FuzzManifest$$' -fuzztime $(FUZZTIME) ./internal/chunk/
	$(GO) test -run xxx -fuzz '^FuzzChunker$$' -fuzztime $(FUZZTIME) ./internal/chunk/
