package compress

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func streamRoundTrip(t *testing.T, src []byte, blockSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterSize(&buf, blockSize)
	if _, err := w.Write(src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := io.ReadAll(NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("stream round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
	return buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name      string
		src       []byte
		blockSize int
	}{
		{"empty", nil, 0},
		{"single byte", []byte{1}, 0},
		{"under one block", bytes.Repeat([]byte("abc"), 100), 1024},
		{"exactly one block", make([]byte, 1024), 1024},
		{"many blocks", bytes.Repeat([]byte("block content "), 5000), 4096},
		{"random multi-block", func() []byte {
			b := make([]byte, 300_000)
			rng.Read(b)
			return b
		}(), 64 << 10},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			streamRoundTrip(t, tt.src, tt.blockSize)
		})
	}
}

func TestStreamSmallWrites(t *testing.T) {
	// Byte-at-a-time writes must assemble into correct blocks.
	src := bytes.Repeat([]byte("tiny writes "), 2000)
	var buf bytes.Buffer
	w := NewWriterSize(&buf, 1024)
	for _, b := range src {
		if _, err := w.Write([]byte{b}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := io.ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Error("byte-at-a-time stream mismatch")
	}
}

func TestStreamSmallReads(t *testing.T) {
	src := bytes.Repeat([]byte("read me slowly "), 1000)
	stream := streamRoundTrip(t, src, 2048)
	r := NewReader(bytes.NewReader(stream))
	var got []byte
	one := make([]byte, 7)
	for {
		n, err := r.Read(one)
		got = append(got, one[:n]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Error("small-read stream mismatch")
	}
}

func TestStreamCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("very repetitive stream content. "), 10_000)
	stream := streamRoundTrip(t, src, DefaultBlockSize)
	if len(stream) > len(src)/4 {
		t.Errorf("stream did not compress: %d -> %d", len(src), len(stream))
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Error("Write after Close succeeded")
	}
	// Double close is fine.
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestStreamReaderRejectsCorruption(t *testing.T) {
	good := streamRoundTrip(t, bytes.Repeat([]byte("content "), 1000), 1024)
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"truncated mid-block", func(b []byte) []byte { return b[:len(b)/2] }},
		{"missing terminator", func(b []byte) []byte { return b[:len(b)-1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := append([]byte(nil), good...)
			_, err := io.ReadAll(NewReader(bytes.NewReader(tt.mutate(buf))))
			if err == nil {
				t.Error("ReadAll accepted corrupted stream")
			}
		})
	}
}

// Every single-bit flip anywhere in the stream must either fail
// decoding or leave the recovered plaintext byte-identical (flips in
// never-read padding bits are benign); silently producing WRONG output
// is never acceptable.
func TestStreamBitFlipExhaustive(t *testing.T) {
	src := bytes.Repeat([]byte("content "), 1000)
	good := streamRoundTrip(t, src, 1024)
	for i := 0; i < len(good); i++ {
		for bit := 0; bit < 8; bit++ {
			buf := append([]byte(nil), good...)
			buf[i] ^= 1 << bit
			got, err := io.ReadAll(NewReader(bytes.NewReader(buf)))
			if err == nil && !bytes.Equal(got, src) {
				t.Fatalf("byte %d bit %d: corrupted stream decoded to wrong output", i, bit)
			}
		}
	}
}

func TestStreamReaderErrorSticky(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("not a stream at all")))
	buf := make([]byte, 16)
	if _, err := r.Read(buf); err == nil {
		t.Fatal("Read of garbage succeeded")
	}
	// Subsequent reads keep failing rather than looping.
	if _, err := r.Read(buf); err == nil {
		t.Error("second Read of broken stream succeeded")
	}
}
