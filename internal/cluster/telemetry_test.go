package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"speed/internal/telemetry"
)

// TestClusterTelemetry exercises the per-node series end to end: node
// gauges, routed-op counters, failovers, read repairs and sync copies
// all land in the Prometheus rendering with node labels.
func TestClusterTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	env := newTestCluster(t, 3, Config{
		Replicas:      2,
		FailThreshold: 1,
		ProbeInterval: time.Hour,
		Telemetry:     reg,
	})
	s := NewSyncer(env.client, SyncConfig{MinHits: 2, Telemetry: reg, Logf: t.Logf})

	tag := ctag("telemetry")
	if err := env.client.Put(tag, csealed("telemetry"), false); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, _, err := env.client.Get(tag); err != nil {
		t.Fatalf("Get: %v", err)
	}
	// Heat an entry on a donor and sync it so sync_copies moves.
	donor := -1
	var hotTag = tag
	for i := 0; donor < 0; i++ {
		hotTag = ctag(fmt.Sprintf("telemetry-hot-%d", i))
		owners := env.client.ring.owners(hotTag, 2)
		for ni := range env.nodes {
			if ni != owners[0] && ni != owners[1] {
				donor = ni
			}
		}
	}
	if _, err := env.nodes[donor].st.Put(env.app.Measurement(), hotTag, csealed("hot")); err != nil {
		t.Fatalf("donor put: %v", err)
	}
	for i := 0; i < 3; i++ {
		env.nodes[donor].st.Get(hotTag)
	}
	if _, err := s.SyncOnce(); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	// Kill the tag's primary and fail over once so failover and
	// read-repair series move and the node gauge drops.
	primary := env.client.ring.owners(tag, 1)[0]
	env.nodes[primary].kill(t)
	if _, found, err := env.client.Get(tag); err != nil || !found {
		t.Fatalf("failover Get = (found=%v, %v)", found, err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	downAddr := env.client.nodes[primary].addr
	for _, want := range []string{
		fmt.Sprintf(`speed_cluster_node_up{node=%q} 0`, downAddr),
		`speed_cluster_routed_total{node=`,
		`op="get"`,
		`op="put"`,
		fmt.Sprintf(`speed_cluster_failovers_total{node=%q}`, downAddr),
		`speed_cluster_read_repairs_total`,
		`speed_cluster_sync_copies_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Exactly one node_up series per member.
	if got := strings.Count(out, "speed_cluster_node_up{"); got != len(env.nodes) {
		t.Errorf("node_up series count = %d, want %d", got, len(env.nodes))
	}
}
