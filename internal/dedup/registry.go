// Package dedup implements SPEED's secure deduplication runtime
// (DedupRuntime, Section IV-B): the trusted library linked against
// application enclaves that intercepts marked function calls, derives
// computation tags, queries the encrypted ResultStore for duplicates,
// and either reuses a verified stored result (Algorithm 2) or executes
// the computation and uploads its protected result (Algorithm 1).
package dedup

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"speed/internal/mle"
)

// FuncDesc is the developer-supplied description of a marked function:
// "library family, version number, function signature, and other
// relevant information, e.g., ("zlib", "1.2.11", int deflate(...))"
// (Section IV-B). Together with the measured code of the trusted
// library it yields a universally unique function identity that is
// stable across compilation environments.
type FuncDesc struct {
	// Library is the trusted library family name, e.g. "zlib".
	Library string
	// Version is the library version, e.g. "1.2.11".
	Version string
	// Signature is the function signature, e.g. "int deflate(...)".
	Signature string
}

// String renders the canonical description.
func (d FuncDesc) String() string {
	return fmt.Sprintf("(%q, %q, %s)", d.Library, d.Version, d.Signature)
}

// Validate reports whether the description is complete.
func (d FuncDesc) Validate() error {
	if d.Library == "" || d.Version == "" || d.Signature == "" {
		return fmt.Errorf("dedup: incomplete function description %v", d)
	}
	return nil
}

// ErrUnknownLibrary is returned when a function description names a
// trusted library that is not present at the application, i.e. the
// application cannot prove it owns the function's code.
var ErrUnknownLibrary = errors.New("dedup: trusted library not registered")

type libKey struct {
	library string
	version string
}

// Registry records the trusted libraries available to an application
// enclave, keyed by (library, version), with the SHA-256 of their
// code. Resolve turns a FuncDesc into a FuncID only when the library is
// actually present, which is DedupRuntime "verifying that the
// application indeed owns the actual code of the function by scanning
// the underlying trust library".
type Registry struct {
	mu   sync.RWMutex
	libs map[libKey][32]byte
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{libs: make(map[libKey][32]byte)}
}

// RegisterLibrary records a trusted library's code. Registering the
// same (library, version) again overwrites the code hash, modelling a
// library update.
func (r *Registry) RegisterLibrary(library, version string, code []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.libs[libKey{library, version}] = sha256.Sum256(code)
}

// Resolve derives the universally unique FuncID for a described
// function, failing with ErrUnknownLibrary when the application does
// not own the named library.
func (r *Registry) Resolve(desc FuncDesc) (mle.FuncID, error) {
	if err := desc.Validate(); err != nil {
		return mle.FuncID{}, err
	}
	r.mu.RLock()
	codeHash, ok := r.libs[libKey{desc.Library, desc.Version}]
	r.mu.RUnlock()
	if !ok {
		return mle.FuncID{}, fmt.Errorf("%w: %s %s", ErrUnknownLibrary, desc.Library, desc.Version)
	}
	h := sha256.New()
	h.Write([]byte("speed/funcid/v1\x00"))
	writeField := func(s string) {
		var lenBuf [4]byte
		n := len(s)
		lenBuf[0] = byte(n >> 24)
		lenBuf[1] = byte(n >> 16)
		lenBuf[2] = byte(n >> 8)
		lenBuf[3] = byte(n)
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	writeField(desc.Library)
	writeField(desc.Version)
	writeField(desc.Signature)
	h.Write(codeHash[:])
	var id mle.FuncID
	h.Sum(id[:0])
	return id, nil
}
