package speed

import (
	"fmt"
	"net"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/store"
	"speed/internal/telemetry"
	"speed/internal/wire"
)

// Measurement identifies an enclave's code, analogous to SGX's
// MRENCLAVE.
type Measurement = enclave.Measurement

// FuncDesc describes a marked function: library family, version and
// signature, e.g. ("zlib", "1.2.11", "int deflate(...)").
type FuncDesc = dedup.FuncDesc

// Outcome reports how a deduplicable call was satisfied.
type Outcome = dedup.Outcome

// Re-exported outcomes.
const (
	// OutcomeComputed: freshly computed and uploaded (initial
	// computation, Algorithm 1).
	OutcomeComputed = dedup.OutcomeComputed
	// OutcomeReused: a stored result was verified and reused
	// (subsequent computation, Algorithm 2).
	OutcomeReused = dedup.OutcomeReused
	// OutcomeRecomputed: a stored entry failed verification and the
	// result was recomputed.
	OutcomeRecomputed = dedup.OutcomeRecomputed
	// OutcomeCoalesced: an identical in-flight computation in this
	// process was shared.
	OutcomeCoalesced = dedup.OutcomeCoalesced
)

// SystemConfig tunes the simulated platform and the ResultStore. The
// zero value gives the paper's defaults: 128 MB EPC (90 MB usable),
// SGX transition costs enabled, in-memory blob storage, no quotas.
type SystemConfig struct {
	// DisableSGXCosts turns off the simulated ECALL/OCALL and paging
	// costs — the "without SGX" mode of Fig. 6.
	DisableSGXCosts bool
	// TransitionCost overrides the simulated one-way enclave boundary
	// crossing cost (default 4µs).
	TransitionCost time.Duration
	// EPCBytes and EPCUsableBytes override the protected memory
	// geometry.
	EPCBytes       int64
	EPCUsableBytes int64
	// StoreMaxEntries and StoreMaxBlobBytes bound the ResultStore with
	// LRU eviction; 0 means unlimited.
	StoreMaxEntries   int
	StoreMaxBlobBytes int64
	// StoreShards sets the ResultStore's dictionary shard count (rounded
	// up to a power of two); 0 selects the default. More shards reduce
	// lock contention under concurrent GET/PUT load.
	StoreShards int
	// StoreTTL expires entries not stored or hit within the duration;
	// 0 disables expiry.
	StoreTTL time.Duration
	// QuotaMaxBytesPerApp, QuotaPutRatePerSec and QuotaPutBurst enable
	// the per-application quota mechanism (DoS mitigation).
	QuotaMaxBytesPerApp int64
	QuotaPutRatePerSec  float64
	QuotaPutBurst       float64
	// BlobDir stores ciphertext blobs on disk under this directory
	// instead of in memory.
	BlobDir string
	// StoreEngine selects the dictionary storage engine: "memory"
	// (default, lock-striped sharded map) or "log" (persistent
	// log-structured engine). Empty with StoreDataDir set selects "log".
	StoreEngine string
	// StoreDataDir is the log engine's data directory (WAL + sealed
	// segments). Required when StoreEngine is "log".
	StoreDataDir string
	// StoreMemtableBytes and StoreCacheBytes bound the log engine's
	// in-memory write buffer and hot-entry read cache; 0 selects the
	// defaults.
	StoreMemtableBytes int64
	StoreCacheBytes    int64
	// StoreFsync selects the log engine's WAL durability policy:
	// "commit" (default, fsync before acknowledging each write),
	// "interval" (background fsync) or "none".
	StoreFsync string
	// StoreCompactInterval is the log engine's background compaction
	// period; 0 selects the default, negative disables it.
	StoreCompactInterval time.Duration
	// DenyByDefault enables controlled deduplication: applications
	// must be explicitly authorized with System.Authorize before the
	// store serves them. Without it any attested application is
	// served.
	DenyByDefault bool
	// ObliviousLookups makes store lookups memory-access-pattern
	// oblivious (every GET scans the whole dictionary with
	// constant-time comparison), trading throughput for side-channel
	// resistance.
	ObliviousLookups bool
	// PlatformSeed makes the simulated machine's key hierarchy
	// deterministic, like the fused keys of real SGX hardware: sealed
	// snapshots survive process restarts when the same seed is used.
	PlatformSeed []byte
	// TrustedPlatforms lists platform attestation keys (from
	// System.AttestationKey on other machines) whose applications may
	// connect to this deployment's served store via remote
	// attestation. Without it, only same-platform applications can
	// connect.
	TrustedPlatforms [][]byte
}

// System is one SPEED deployment on a simulated SGX machine: the
// platform, the ResultStore enclave and the store itself.
type System struct {
	platform *enclave.Platform
	storeEnc *enclave.Enclave
	store    *store.Store
	acl      *store.ACL // non-nil when DenyByDefault
	trusted  [][]byte   // remote platforms the served store accepts
	tel      *telemetry.Registry
}

// NewSystem creates a deployment with the zero-value SystemConfig.
func NewSystem() (*System, error) {
	return NewSystemWithConfig(SystemConfig{})
}

// NewSystemWithConfig creates a deployment with explicit configuration.
func NewSystemWithConfig(cfg SystemConfig) (*System, error) {
	platform := enclave.NewPlatform(enclave.Config{
		EPCBytes:       cfg.EPCBytes,
		EPCUsableBytes: cfg.EPCUsableBytes,
		TransitionCost: cfg.TransitionCost,
		SimulateCosts:  !cfg.DisableSGXCosts,
		PlatformSeed:   cfg.PlatformSeed,
	})
	storeEnc, err := platform.Create("speed-resultstore", []byte("speed resultstore enclave v1"))
	if err != nil {
		return nil, fmt.Errorf("speed: create store enclave: %w", err)
	}
	var blobs store.BlobStore
	if cfg.BlobDir != "" {
		blobs, err = store.NewDiskBlobStore(cfg.BlobDir)
		if err != nil {
			return nil, fmt.Errorf("speed: blob dir: %w", err)
		}
	}
	var acl *store.ACL
	var auth store.Authorizer
	if cfg.DenyByDefault {
		acl = store.NewACL(0)
		auth = acl
	}
	tel := telemetry.NewRegistry()
	st, err := store.New(store.Config{
		Enclave:         storeEnc,
		Blobs:           blobs,
		Shards:          cfg.StoreShards,
		MaxEntries:      cfg.StoreMaxEntries,
		MaxBlobBytes:    cfg.StoreMaxBlobBytes,
		TTL:             cfg.StoreTTL,
		Auth:            auth,
		Oblivious:       cfg.ObliviousLookups,
		Telemetry:       tel,
		Engine:          cfg.StoreEngine,
		DataDir:         cfg.StoreDataDir,
		MemtableBytes:   cfg.StoreMemtableBytes,
		CacheBytes:      cfg.StoreCacheBytes,
		Fsync:           cfg.StoreFsync,
		CompactInterval: cfg.StoreCompactInterval,
		Quota: store.QuotaConfig{
			MaxBytesPerApp: cfg.QuotaMaxBytesPerApp,
			PutRatePerSec:  cfg.QuotaPutRatePerSec,
			PutBurst:       cfg.QuotaPutBurst,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("speed: create store: %w", err)
	}
	platform.RegisterTelemetry(tel)
	storeEnc.RegisterTelemetry(tel)
	return &System{platform: platform, storeEnc: storeEnc, store: st, acl: acl,
		trusted: cfg.TrustedPlatforms, tel: tel}, nil
}

// Telemetry returns the deployment's metric registry. Every component
// of the deployment — the platform, the ResultStore and its enclave,
// and each App created from this System — registers into it; expose it
// with telemetry.Serve or AppConfig.MetricsAddr.
func (s *System) Telemetry() *telemetry.Registry { return s.tel }

// AttestationKey returns this machine's platform attestation public
// key, to be registered in other deployments' TrustedPlatforms (the
// analogue of attestation-service provisioning).
func (s *System) AttestationKey() []byte {
	return s.platform.AttestationPublicKey()
}

// Authorize grants an application access to the store under
// controlled deduplication (DenyByDefault). get and put select the
// permitted operations. A no-op unless DenyByDefault was set.
func (s *System) Authorize(app Measurement, get, put bool) {
	if s.acl == nil {
		return
	}
	var perm store.Permission
	if get {
		perm |= store.PermGet
	}
	if put {
		perm |= store.PermPut
	}
	s.acl.Grant(app, perm)
}

// RevokeAuthorization removes an application's grant under controlled
// deduplication.
func (s *System) RevokeAuthorization(app Measurement) {
	if s.acl != nil {
		s.acl.Revoke(app)
	}
}

// SealSnapshot serialises the ResultStore's dictionary and blobs,
// sealed to the store enclave identity and this machine (see
// SystemConfig.PlatformSeed for restart survival).
func (s *System) SealSnapshot() ([]byte, error) {
	return s.store.SealSnapshot()
}

// RestoreSnapshot installs entries from a snapshot produced by
// SealSnapshot on the same store identity and machine, returning the
// number of entries installed.
func (s *System) RestoreSnapshot(snapshot []byte) (int, error) {
	return s.store.RestoreSnapshot(snapshot)
}

// StoreMeasurement returns the ResultStore enclave's measurement, which
// remote applications pin during the attested handshake.
func (s *System) StoreMeasurement() Measurement {
	return s.storeEnc.Measurement()
}

// StoreStats is a snapshot of ResultStore activity.
type StoreStats struct {
	// Gets and Hits count GET_REQUESTs and those answered positively.
	Gets, Hits int64
	// Puts counts accepted fresh uploads; PutDupes counts uploads for
	// already-stored tags; PutDenied counts quota rejections.
	Puts, PutDupes, PutDenied int64
	// Unauthorized counts operations denied by controlled
	// deduplication.
	Unauthorized int64
	// Evictions counts entries removed by LRU pressure.
	Evictions int64
	// Entries is the current dictionary size; BlobBytes the total
	// ciphertext bytes outside the enclave.
	Entries   int
	BlobBytes int64
}

// StoreStats returns a snapshot of the deployment's store counters.
func (s *System) StoreStats() StoreStats {
	st := s.store.Stats()
	return StoreStats{
		Gets: st.Gets, Hits: st.Hits,
		Puts: st.Puts, PutDupes: st.PutDupes, PutDenied: st.PutDenied,
		Unauthorized: st.Unauthorized,
		Evictions:    st.Evictions,
		Entries:      st.Entries, BlobBytes: st.BlobBytes,
	}
}

// EPCUsed reports the platform's current protected-memory consumption.
func (s *System) EPCUsed() int64 { return s.platform.EPCUsed() }

// ExpireNow sweeps the ResultStore, removing every entry past the
// configured StoreTTL, and reports how many were removed. A no-op
// without a TTL.
func (s *System) ExpireNow() int { return s.store.ExpireNow() }

// Serve exposes the ResultStore on the listener using the attested wire
// protocol. Applications on the same machine always connect; remote
// applications connect when their platform is in TrustedPlatforms. The
// returned server runs until its Close method is called.
func (s *System) Serve(ln net.Listener) *StoreServer {
	if s.tel.Node() == "" {
		s.tel.SetNode(ln.Addr().String())
	}
	opts := []store.ServerOption{store.WithTelemetry(s.tel)}
	if len(s.trusted) > 0 {
		opts = append(opts, store.WithTrust(&wire.Trust{PlatformKeys: s.trusted}))
	}
	srv := store.NewServer(s.store, ln, opts...)
	go func() { _ = srv.Serve() }()
	return &StoreServer{srv: srv}
}

// StoreServer is a running networked ResultStore endpoint.
type StoreServer struct {
	srv *store.Server
}

// Addr returns the listening address.
func (s *StoreServer) Addr() net.Addr { return s.srv.Addr() }

// Close stops the server and waits for in-flight handlers.
func (s *StoreServer) Close() error { return s.srv.Close() }

// Close shuts the deployment down. Applications created from it must be
// closed first.
func (s *System) Close() {
	s.store.Close()
	s.storeEnc.Destroy()
}
