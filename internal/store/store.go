package store

import (
	"container/list"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
	"time"

	"speed/internal/enclave"
	"speed/internal/mle"
	"speed/internal/telemetry"
)

// entryOverhead approximates the in-enclave footprint of one dictionary
// entry beyond its variable-length fields: tag key, blob pointer,
// counters and map bucket overhead. It is charged against the store
// enclave's EPC so that large dictionaries produce realistic paging
// pressure.
const entryOverhead = 96

var (
	// ErrQuota is returned when a PUT is rejected by the quota
	// mechanism.
	ErrQuota = errors.New("store: quota exceeded")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("store: closed")
)

// Config configures a Store.
type Config struct {
	// Enclave hosts the metadata dictionary. Required.
	Enclave *enclave.Enclave
	// Blobs holds ciphertexts outside the enclave. Defaults to an
	// in-memory store.
	Blobs BlobStore
	// MaxEntries caps the dictionary size; 0 means unlimited. When
	// exceeded, least-recently-used entries are evicted.
	MaxEntries int
	// MaxBlobBytes caps total ciphertext bytes; 0 means unlimited.
	MaxBlobBytes int64
	// Quota bounds per-application usage.
	Quota QuotaConfig
	// Auth, when non-nil, gates every operation by the caller's
	// attested measurement (controlled deduplication, Section III-D).
	Auth Authorizer
	// Oblivious makes dictionary lookups access-pattern oblivious: a
	// GET touches every entry with constant-time tag comparison and
	// performs no LRU bookkeeping, so an adversary observing enclave
	// memory accesses cannot tell which entry (if any) matched. This
	// trades throughput for side-channel resistance (the security/
	// performance balance the paper defers to future work,
	// Section III-D).
	Oblivious bool
	// TTL expires entries that have not been stored or hit within the
	// given duration; 0 disables expiry. Expired entries are collected
	// lazily on access and by ExpireNow.
	TTL time.Duration
	// Telemetry, when non-nil, registers the store's counters (gets,
	// hits, puts, denials, evictions — backed by the Stats snapshot),
	// occupancy gauges, and per-operation service-latency histograms
	// speed_store_op_seconds{op="get"|"put"}. Nil disables.
	Telemetry *telemetry.Registry
	// Now is the clock used by the quota mechanism; nil means
	// time.Now. Injectable for tests.
	Now func() time.Time
}

// Stats is a snapshot of store activity.
type Stats struct {
	Gets         int64
	Hits         int64
	Puts         int64
	PutDupes     int64
	PutDenied    int64
	Unauthorized int64
	Evictions    int64
	Expired      int64
	Entries      int
	BlobBytes    int64
}

// entry is the small in-enclave dictionary record: the challenge r, the
// wrapped key [k], and a pointer to the out-of-enclave ciphertext
// (Section IV-B: "the dictionary entry is designed to be small").
type entry struct {
	challenge  []byte
	wrappedKey []byte
	blobID     BlobID
	blobSize   int64
	owner      enclave.Measurement
	hits       int64
	lastTouch  time.Time
	lruElem    *list.Element
}

func (e *entry) enclaveBytes() int64 {
	return entryOverhead + int64(len(e.challenge)+len(e.wrappedKey))
}

// Store is the encrypted ResultStore. All methods are safe for
// concurrent use.
type Store struct {
	cfg Config

	mu        sync.Mutex
	dict      map[mle.Tag]*entry
	lru       *list.List // front = most recent; values are mle.Tag
	blobTotal int64      // running sum of resident entry blob sizes
	stats     Stats
	closed    bool

	quota *quotas

	// Per-op service-latency histograms; nil (and skipped) when
	// Config.Telemetry was nil.
	getSeconds *telemetry.Histogram
	putSeconds *telemetry.Histogram
}

// New constructs a Store.
func New(cfg Config) (*Store, error) {
	if cfg.Enclave == nil {
		return nil, errors.New("store: Config.Enclave is required")
	}
	if cfg.Blobs == nil {
		cfg.Blobs = NewMemBlobStore()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Store{
		cfg:   cfg,
		dict:  make(map[mle.Tag]*entry),
		lru:   list.New(),
		quota: newQuotas(cfg.Quota, cfg.Now),
	}
	s.registerTelemetry(cfg.Telemetry)
	return s, nil
}

// registerTelemetry wires the store into reg: latency histograms are
// real metrics observed inline, while the counters and gauges read the
// Stats snapshot on demand so there is a single source of truth (and
// several stores sharing one registry sum, see telemetry.CounterFunc).
func (s *Store) registerTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.getSeconds = reg.NewHistogram("speed_store_op_seconds",
		"store operation service latency", telemetry.L("op", "get"))
	s.putSeconds = reg.NewHistogram("speed_store_op_seconds",
		"store operation service latency", telemetry.L("op", "put"))
	for _, c := range []struct {
		name, help string
		field      func(Stats) int64
	}{
		{"speed_store_gets_total", "GET requests", func(st Stats) int64 { return st.Gets }},
		{"speed_store_hits_total", "GET requests answered positively", func(st Stats) int64 { return st.Hits }},
		{"speed_store_puts_total", "accepted fresh uploads", func(st Stats) int64 { return st.Puts }},
		{"speed_store_put_dupes_total", "uploads for already-stored tags", func(st Stats) int64 { return st.PutDupes }},
		{"speed_store_put_denied_total", "uploads rejected by quota", func(st Stats) int64 { return st.PutDenied }},
		{"speed_store_unauthorized_total", "operations denied by controlled deduplication", func(st Stats) int64 { return st.Unauthorized }},
		{"speed_store_evictions_total", "entries evicted by LRU pressure", func(st Stats) int64 { return st.Evictions }},
		{"speed_store_expired_total", "entries collected by TTL expiry", func(st Stats) int64 { return st.Expired }},
	} {
		field := c.field
		reg.NewCounterFunc(c.name, c.help, func() int64 { return field(s.Stats()) })
	}
	reg.NewGaugeFunc("speed_store_entries", "current dictionary size",
		func() float64 { return float64(s.Len()) })
	reg.NewGaugeFunc("speed_store_blob_bytes", "resident ciphertext bytes outside the enclave",
		func() float64 { return float64(s.cfg.Blobs.Bytes()) })
}

// Enclave returns the enclave hosting the metadata dictionary.
func (s *Store) Enclave() *enclave.Enclave { return s.cfg.Enclave }

// GetAs is Get with the caller's attested identity, consulted by the
// store's Authorizer when one is configured.
func (s *Store) GetAs(app enclave.Measurement, tag mle.Tag) (mle.Sealed, bool, error) {
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Authorize(app, tag, PermGet); err != nil {
			s.mu.Lock()
			s.stats.Unauthorized++
			s.mu.Unlock()
			return mle.Sealed{}, false, err
		}
	}
	return s.Get(tag)
}

// Get looks up the computation tag, returning the (r, [k], [res])
// triple when found. The dictionary access happens inside the store
// enclave (one ECALL); the ciphertext is fetched from untrusted storage
// outside.
func (s *Store) Get(tag mle.Tag) (mle.Sealed, bool, error) {
	if s.getSeconds != nil {
		start := time.Now()
		defer func() { s.getSeconds.Observe(time.Since(start)) }()
	}
	var (
		found   bool
		expired bool
		blobID  BlobID
		sealed  mle.Sealed
	)
	err := s.cfg.Enclave.ECall(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		s.stats.Gets++
		var e *entry
		if s.cfg.Oblivious {
			e = s.obliviousLookupLocked(tag)
		} else if cur, ok := s.dict[tag]; ok {
			e = cur
		}
		if e == nil {
			return nil
		}
		if s.expiredLocked(e) {
			// Lazily collect the stale entry and report a miss.
			expired = true
			return nil
		}
		found = true
		s.stats.Hits++
		e.hits++
		if !s.cfg.Oblivious {
			// LRU maintenance and freshness updates reveal which entry
			// was touched; skip them in oblivious mode.
			s.lru.MoveToFront(e.lruElem)
			e.lastTouch = s.cfg.Now()
		}
		sealed.Challenge = append([]byte(nil), e.challenge...)
		sealed.WrappedKey = append([]byte(nil), e.wrappedKey...)
		blobID = e.blobID
		return nil
	})
	if expired {
		s.deleteTag(tag, reasonExpire)
	}
	if err != nil || !found {
		return mle.Sealed{}, false, err
	}
	blob, err := s.cfg.Blobs.Get(blobID)
	if err != nil {
		// The untrusted storage lost or corrupted the blob; treat as a
		// miss so the application recomputes (it would reject the
		// result at verification anyway).
		s.deleteTag(tag, reasonDangling)
		return mle.Sealed{}, false, nil
	}
	sealed.Blob = blob
	return sealed, true, nil
}

// Put stores a freshly computed sealed result for the tag on behalf of
// the application identified by owner. Duplicate tags keep the first
// stored version ("only one version of result ciphertext ... needs to
// be stored", Section IV-B Remark); installed reports whether this call
// created the entry.
func (s *Store) Put(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed) (installed bool, err error) {
	return s.put(owner, tag, sealed, putOpts{})
}

// PutReplace stores a sealed result, overwriting any existing entry
// for the tag. It is used when an application recomputed a result
// after the stored version failed the verification protocol (a
// poisoned or corrupted entry): without replacement the bad entry
// would be permanent, costing every future caller a recomputation.
// Replacement is still subject to authorization and quotas, so an
// adversary cannot use it to thrash the cache faster than its PUT rate
// allows.
func (s *Store) PutReplace(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed) (installed bool, err error) {
	return s.put(owner, tag, sealed, putOpts{replace: true})
}

// putOpts selects Put variants.
type putOpts struct {
	// restore bypasses authorization and rate limiting for
	// operator-initiated snapshot restores while keeping byte
	// accounting consistent.
	restore bool
	// replace removes any existing entry for the tag before inserting.
	replace bool
}

func (s *Store) put(owner enclave.Measurement, tag mle.Tag, sealed mle.Sealed, opts putOpts) (installed bool, err error) {
	if s.putSeconds != nil {
		start := time.Now()
		defer func() { s.putSeconds.Observe(time.Since(start)) }()
	}
	restore := opts.restore
	if s.cfg.Auth != nil && !restore {
		if aerr := s.cfg.Auth.Authorize(owner, tag, PermPut); aerr != nil {
			s.mu.Lock()
			s.stats.Unauthorized++
			s.mu.Unlock()
			return false, aerr
		}
	}
	blobLen := int64(len(sealed.Blob))
	if ok, reason := s.quota.allowPut(owner, blobLen, restore); !ok {
		s.mu.Lock()
		s.stats.PutDenied++
		s.mu.Unlock()
		return false, fmt.Errorf("%w: %s", ErrQuota, reason)
	}

	if opts.replace {
		// Drop any existing version before inserting. Not atomic with
		// the insert below: a concurrent Put can win the race, in
		// which case this call reports a duplicate — acceptable, since
		// any fresh version supersedes the bad one.
		s.deleteTag(tag, reasonReplace)
	}

	// Duplicate-check first under the dictionary lock (inside the
	// enclave); only store the blob outside if this is a fresh tag.
	dupe := false
	err = s.cfg.Enclave.ECall(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if _, ok := s.dict[tag]; ok {
			dupe = true
			s.stats.PutDupes++
		}
		return nil
	})
	if err != nil {
		s.quota.creditBytes(owner, blobLen)
		return false, err
	}
	if dupe {
		s.quota.creditBytes(owner, blobLen)
		return false, nil
	}

	blobID, err := s.cfg.Blobs.Put(sealed.Blob)
	if err != nil {
		s.quota.creditBytes(owner, blobLen)
		return false, fmt.Errorf("store blob: %w", err)
	}

	e := &entry{
		challenge:  append([]byte(nil), sealed.Challenge...),
		wrappedKey: append([]byte(nil), sealed.WrappedKey...),
		blobID:     blobID,
		blobSize:   blobLen,
		owner:      owner,
		lastTouch:  s.cfg.Now(),
	}
	if err := s.cfg.Enclave.Alloc(e.enclaveBytes()); err != nil {
		_ = s.cfg.Blobs.Delete(blobID)
		s.quota.creditBytes(owner, blobLen)
		return false, fmt.Errorf("metadata allocation: %w", err)
	}

	var evict []mle.Tag
	err = s.cfg.Enclave.ECall(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if _, ok := s.dict[tag]; ok {
			// Lost a race with a concurrent identical PUT.
			dupe = true
			s.stats.PutDupes++
			return nil
		}
		e.lruElem = s.lru.PushFront(tag)
		s.dict[tag] = e
		s.blobTotal += e.blobSize
		s.stats.Puts++
		evict = s.overflowLocked()
		return nil
	})
	if err != nil || dupe {
		_ = s.cfg.Blobs.Delete(blobID)
		s.cfg.Enclave.Free(e.enclaveBytes())
		s.quota.creditBytes(owner, blobLen)
		return false, err
	}
	for _, t := range evict {
		s.deleteTag(t, reasonEvict)
	}
	return true, nil
}

// expiredLocked reports whether the entry is past its TTL. Caller
// holds s.mu.
func (s *Store) expiredLocked(e *entry) bool {
	return s.cfg.TTL > 0 && s.cfg.Now().Sub(e.lastTouch) > s.cfg.TTL
}

// ExpireNow sweeps the dictionary, removing every entry past its TTL,
// and reports how many were removed. A no-op without a configured TTL.
func (s *Store) ExpireNow() int {
	if s.cfg.TTL <= 0 {
		return 0
	}
	var stale []mle.Tag
	s.mu.Lock()
	for tag, e := range s.dict {
		if s.expiredLocked(e) {
			stale = append(stale, tag)
		}
	}
	s.mu.Unlock()
	removed := 0
	for _, tag := range stale {
		if s.deleteTag(tag, reasonExpire) {
			removed++
		}
	}
	return removed
}

// obliviousLookupLocked scans every dictionary entry with a
// constant-time tag comparison, doing identical work for every entry
// regardless of where (or whether) the tag matches. Caller holds s.mu
// inside the store enclave.
func (s *Store) obliviousLookupLocked(tag mle.Tag) *entry {
	var found *entry
	for k := range s.dict {
		k := k
		match := subtle.ConstantTimeCompare(k[:], tag[:])
		// Branchless-ish select: always read the entry, conditionally
		// retain it.
		e := s.dict[k]
		if match == 1 {
			found = e
		}
	}
	return found
}

// overflowLocked returns the LRU tags that must be evicted to respect
// MaxEntries and MaxBlobBytes. Caller holds s.mu.
func (s *Store) overflowLocked() []mle.Tag {
	var evict []mle.Tag
	over := func() bool {
		if s.cfg.MaxEntries > 0 && len(s.dict)-len(evict) > s.cfg.MaxEntries {
			return true
		}
		return false
	}
	elem := s.lru.Back()
	for over() && elem != nil {
		tag, ok := elem.Value.(mle.Tag)
		if !ok {
			break
		}
		evict = append(evict, tag)
		elem = elem.Prev()
	}
	if s.cfg.MaxBlobBytes > 0 {
		total := s.blobTotal
		skip := make(map[mle.Tag]bool, len(evict))
		for _, t := range evict {
			skip[t] = true
			total -= s.dict[t].blobSize
		}
		for elem := s.lru.Back(); elem != nil && total > s.cfg.MaxBlobBytes; elem = elem.Prev() {
			tag, ok := elem.Value.(mle.Tag)
			if !ok || skip[tag] {
				continue
			}
			evict = append(evict, tag)
			total -= s.dict[tag].blobSize
		}
	}
	return evict
}

// deleteReason distinguishes why an entry is removed, for accurate
// statistics.
type deleteReason int

const (
	reasonEvict deleteReason = iota + 1
	reasonExpire
	reasonDangling
	reasonReplace
)

// deleteTag removes an entry, releasing its enclave memory, blob and
// quota accounting. It reports whether the entry existed.
func (s *Store) deleteTag(tag mle.Tag, reason deleteReason) bool {
	s.mu.Lock()
	e, ok := s.dict[tag]
	if ok {
		delete(s.dict, tag)
		s.lru.Remove(e.lruElem)
		s.blobTotal -= e.blobSize
		switch reason {
		case reasonEvict:
			s.stats.Evictions++
		case reasonExpire:
			s.stats.Expired++
		}
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	s.cfg.Enclave.Free(e.enclaveBytes())
	_ = s.cfg.Blobs.Delete(e.blobID)
	s.quota.creditBytes(e.owner, e.blobSize)
	return true
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Entries = len(s.dict)
	s.mu.Unlock()
	st.BlobBytes = s.cfg.Blobs.Bytes()
	return st
}

// Len reports the number of dictionary entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dict)
}

// AppBytes reports the resident ciphertext bytes attributed to an
// application for quota purposes.
func (s *Store) AppBytes(owner enclave.Measurement) int64 {
	return s.quota.bytesOf(owner)
}

// Close marks the store closed. Subsequent Get/Put return ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// ExportEntry is a replication record: everything needed to install the
// result at another store.
type ExportEntry struct {
	Tag    mle.Tag
	Sealed mle.Sealed
	Hits   int64
	Owner  enclave.Measurement
}

// Export returns entries with at least minHits hits, used by the
// master-store replication of Section IV-B ("periodically synchronizes
// the popular (i.e., frequently appeared) results").
func (s *Store) Export(minHits int64) ([]ExportEntry, error) {
	s.mu.Lock()
	type ref struct {
		tag   mle.Tag
		e     *entry
		blob  BlobID
		hits  int64
		owner enclave.Measurement
	}
	refs := make([]ref, 0, len(s.dict))
	for tag, e := range s.dict {
		if e.hits >= minHits {
			refs = append(refs, ref{tag: tag, e: e, blob: e.blobID, hits: e.hits, owner: e.owner})
		}
	}
	s.mu.Unlock()

	out := make([]ExportEntry, 0, len(refs))
	for _, r := range refs {
		blob, err := s.cfg.Blobs.Get(r.blob)
		if err != nil {
			continue // entry raced with eviction
		}
		out = append(out, ExportEntry{
			Tag: r.tag,
			Sealed: mle.Sealed{
				Challenge:  append([]byte(nil), r.e.challenge...),
				WrappedKey: append([]byte(nil), r.e.wrappedKey...),
				Blob:       blob,
			},
			Hits:  r.hits,
			Owner: r.owner,
		})
	}
	return out, nil
}
