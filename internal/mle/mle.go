// Package mle implements the cryptographic core of SPEED: computation
// tags and the result-encryption scheme built on randomized convergent
// encryption (RCE), a message-locked encryption (MLE) variant.
//
// Unlike data deduplication, where duplicates are identified by the hash
// of the data alone, computation deduplication identifies a computation
// by the combination of a function's code identity and its input data
// (Section III-A of the paper). This package therefore keys everything
// off a (FuncID, input) pair:
//
//	tag t     = SHA-256(funcID || input)                duplicate check
//	h         = SHA-256(funcID || input || r)           secondary key
//	k         = random AES-128 key                      result key
//	[k]       = k XOR h[:16]                            wrapped key
//	[res]     = AES-128-GCM(k, result)                  result ciphertext
//
// where r is a random challenge chosen by the initial computation
// (Algorithm 1). Any application that owns the same function code and
// input recomputes h, unwraps k, and decrypts (Algorithm 2); an
// application that merely obtained (r, [k], [res]) via the tag cannot,
// which is the query-forging resistance argued in Section III-D.
package mle

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Sizes of the scheme's fixed-length values.
const (
	// TagSize is the size of a computation tag (SHA-256).
	TagSize = 32
	// KeySize is the AES-128 result-encryption key size, matching the
	// paper's AES-GCM-128 choice from the SGX SDK crypto library.
	KeySize = 16
	// ChallengeSize is the size of the random challenge message r.
	ChallengeSize = 16
	// nonceSize is the standard GCM nonce size.
	nonceSize = 12
)

// ErrAuthFailed is returned when decryption or verification fails: the
// ciphertext was tampered with, or the caller does not actually own the
// function code and input (the ⊥ case of the Fig. 3 protocol).
var ErrAuthFailed = errors.New("mle: authentication failed")

// FuncID is the universally unique identity of a deduplicable function,
// derived by the runtime from the function's description (library
// family, version, signature) and the measured code of its trusted
// library (Section IV-B).
type FuncID [32]byte

// Tag is the duplicate-checking tag t = Hash(func, m). Two computations
// are considered duplicates exactly when their tags are equal.
type Tag [TagSize]byte

// String renders a short hex prefix for logs.
func (t Tag) String() string { return fmt.Sprintf("%x", t[:8]) }

// ComputeTag derives the tag for a computation func(input).
// Domain-separated lengths make the encoding injective.
func ComputeTag(id FuncID, input []byte) Tag {
	h := sha256.New()
	writeDomain(h, "speed/tag/v1")
	h.Write(id[:])
	writeLen(h, len(input))
	h.Write(input)
	var t Tag
	h.Sum(t[:0])
	return t
}

// secondaryKey computes h = Hash(func, m, r), the one-time pad that
// wraps the random result key.
func secondaryKey(id FuncID, input, challenge []byte) [32]byte {
	h := sha256.New()
	writeDomain(h, "speed/h/v1")
	h.Write(id[:])
	writeLen(h, len(input))
	h.Write(input)
	writeLen(h, len(challenge))
	h.Write(challenge)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeDomain(w io.Writer, s string) {
	_, _ = io.WriteString(w, s)
	_, _ = w.Write([]byte{0})
}

func writeLen(w io.Writer, n int) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(n))
	_, _ = w.Write(buf[:])
}

// Sealed is the protected form of a computation result, i.e. the
// (r, [k], [res]) triple stored at the ResultStore. Challenge and
// WrappedKey are small metadata kept inside the store enclave; Blob is
// the bulk ciphertext kept outside (Section IV-B).
type Sealed struct {
	// Challenge is the random challenge message r.
	Challenge []byte
	// WrappedKey is [k] = k XOR Hash(func, m, r)[:16].
	WrappedKey []byte
	// Blob is nonce || AES-128-GCM(k, result).
	Blob []byte
}

// Clone returns a deep copy of the triple. Wire decoding is zero-copy
// (a decoded Sealed aliases the receive buffer), so anything that
// retains a Sealed past the buffer's validity window — the store
// keeping a PUT, the client mux handing a GET response to a waiter —
// clones it first.
func (s Sealed) Clone() Sealed {
	return Sealed{
		Challenge:  bytes.Clone(s.Challenge),
		WrappedKey: bytes.Clone(s.WrappedKey),
		Blob:       bytes.Clone(s.Blob),
	}
}

// Scheme encrypts and decrypts computation results. Implementations are
// the cross-application RCE scheme (Section III-C) and the single-key
// basic design (Section III-B) used as an ablation baseline.
type Scheme interface {
	// Encrypt protects result for the computation identified by
	// (id, input).
	Encrypt(id FuncID, input, result []byte) (Sealed, error)
	// Decrypt recovers the result, returning ErrAuthFailed if the
	// sealed triple is inauthentic or the caller's (id, input) do not
	// match the computation that produced it.
	Decrypt(id FuncID, input []byte, s Sealed) ([]byte, error)
	// Name identifies the scheme in metrics and benchmarks.
	Name() string
}

// RCE is the paper's main design: a keyless, cross-application result
// encryption scheme. The zero value uses crypto/rand; tests may inject
// a deterministic reader.
type RCE struct {
	// Rand is the randomness source; nil means crypto/rand.Reader.
	Rand io.Reader
}

var _ Scheme = (*RCE)(nil)

// Name implements Scheme.
func (*RCE) Name() string { return "rce" }

func (r *RCE) rand() io.Reader {
	if r.Rand != nil {
		return r.Rand
	}
	return rand.Reader
}

// Encrypt implements Algorithm 1 lines 5-9: pick challenge r, derive
// h = Hash(func, m, r), generate random k, encrypt the result under k,
// and wrap k as [k] = k XOR h.
func (r *RCE) Encrypt(id FuncID, input, result []byte) (Sealed, error) {
	challenge, wrapped, key, err := KeyGen(id, input, r.rand())
	defer Zeroize(key)
	if err != nil {
		return Sealed{}, err
	}
	blob, err := EncryptResult(key, result, r.rand())
	if err != nil {
		return Sealed{}, err
	}
	return Sealed{Challenge: challenge, WrappedKey: wrapped, Blob: blob}, nil
}

// Decrypt implements Algorithm 2 lines 4-6 and the Fig. 3 verification:
// recover k = [k] XOR Hash(func, m, r) and attempt authenticated
// decryption; any mismatch in code, input, challenge, wrapped key, or
// ciphertext yields ErrAuthFailed (⊥).
func (r *RCE) Decrypt(id FuncID, input []byte, s Sealed) ([]byte, error) {
	key, err := KeyRec(id, input, s.Challenge, s.WrappedKey)
	defer Zeroize(key)
	if err != nil {
		return nil, err
	}
	return DecryptResult(key, s.Blob)
}

// SingleKey is the basic design of Section III-B: all results are
// protected under one system-wide secret key. It is retained as a
// baseline; the paper rejects it because a single compromised
// application exposes every stored result.
type SingleKey struct {
	key  [KeySize]byte
	rand io.Reader
}

var _ Scheme = (*SingleKey)(nil)

// NewSingleKey constructs the basic scheme with the given system-wide
// key. rnd may be nil to use crypto/rand.
func NewSingleKey(key [KeySize]byte, rnd io.Reader) *SingleKey {
	if rnd == nil {
		rnd = rand.Reader
	}
	return &SingleKey{key: key, rand: rnd}
}

// Name implements Scheme.
func (*SingleKey) Name() string { return "single-key" }

// Encrypt implements Scheme. The tag-bound associated data prevents an
// adversary from splicing a ciphertext onto a different computation's
// dictionary entry.
func (s *SingleKey) Encrypt(id FuncID, input, result []byte) (Sealed, error) {
	tag := ComputeTag(id, input)
	blob, err := sealAESGCMWithAD(s.key[:], result, tag[:], s.rand)
	if err != nil {
		return Sealed{}, err
	}
	return Sealed{Blob: blob}, nil
}

// Decrypt implements Scheme.
func (s *SingleKey) Decrypt(id FuncID, input []byte, sl Sealed) ([]byte, error) {
	tag := ComputeTag(id, input)
	return openAESGCMWithAD(s.key[:], sl.Blob, tag[:])
}

// GenerateKey produces a fresh random AES-128 key, the paper's
// AES.KeyGen(1^λ).
func GenerateKey(rnd io.Reader) ([]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rnd, key); err != nil {
		return nil, fmt.Errorf("mle: keygen: %w", err)
	}
	return key, nil
}

func sealAESGCM(key, plaintext []byte, rnd io.Reader) ([]byte, error) {
	return sealAESGCMWithAD(key, plaintext, nil, rnd)
}

func sealAESGCMWithAD(key, plaintext, ad []byte, rnd io.Reader) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	// Size the blob exactly (nonce || ciphertext || tag) so Seal appends
	// in place instead of growing a 12-byte nonce slice with a copy.
	out := make([]byte, nonceSize, nonceSize+len(plaintext)+aead.Overhead())
	if _, err := io.ReadFull(rnd, out); err != nil {
		return nil, fmt.Errorf("mle: nonce: %w", err)
	}
	return aead.Seal(out, out[:nonceSize], plaintext, ad), nil
}

func openAESGCM(key, blob []byte) ([]byte, error) {
	return openAESGCMWithAD(key, blob, nil)
}

func openAESGCMWithAD(key, blob, ad []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(blob) < nonceSize {
		return nil, ErrAuthFailed
	}
	pt, err := aead.Open(nil, blob[:nonceSize], blob[nonceSize:], ad)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return pt, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("mle: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}
