package logengine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"speed/internal/mle"
)

// Immutable sorted segments are the engine's durable tier. A segment
// file is written once (by a memtable flush or a compaction), fsynced,
// then only ever read:
//
//	file   := magic [8]byte ("SPSEG1\r\n") | count uint32 | body | crc uint32
//	body   := record*                       (sorted ascending by tag)
//	record := tag [32]byte | flag byte | blobSize uint32 | sealedLen uint32 | sealed
//
// flag 1 marks a tombstone (sealedLen 0): the tag was deleted after an
// older segment recorded it. crc is CRC-32C over body; it is verified
// when the segment is opened, so a file the untrusted disk corrupted
// is rejected before any record is trusted. Individual records are
// additionally sealed — the CRC is integrity against accidents, the
// seal against an adversary.
//
// Readers locate a tag through an in-memory sparse index: every
// indexInterval-th record's (tag, offset) pair. A lookup binary-
// searches the sparse index, then scans at most indexInterval record
// headers from the file — O(log n) memory-resident comparisons plus a
// short bounded disk scan, no per-key in-memory state.

const (
	segMagic       = "SPSEG1\r\n"
	segHeaderLen   = len(segMagic) + 4
	segRecHeader   = 32 + 1 + 4 + 4
	indexInterval  = 16
	segFlagLive    = 0
	segFlagDead    = 1
	manifestName   = "MANIFEST"
	manifestHeader = "speedlog v1"
)

// indexEntry is one sparse-index sample: the tag of the n*16th record
// and its absolute file offset.
type indexEntry struct {
	tag mle.Tag
	off int64
}

// keyHdr is a record header without its payload — what recovery and
// merge planning need, cheap enough to hold for every key transiently.
type keyHdr struct {
	tag      mle.Tag
	dead     bool
	blobSize int64
}

// segment is an open, immutable, verified segment file.
type segment struct {
	path   string
	id     uint64
	f      *os.File
	count  int
	size   int64 // file size
	sparse []indexEntry
	minTag mle.Tag
	maxTag mle.Tag
}

func segmentName(id uint64) string { return fmt.Sprintf("seg-%08d.seg", id) }

// parseSegmentName extracts the id from a segment filename.
func parseSegmentName(name string) (uint64, bool) {
	var id uint64
	if n, err := fmt.Sscanf(name, "seg-%08d.seg", &id); n == 1 && err == nil {
		return id, true
	}
	return 0, false
}

// segRecord is one record staged for writing.
type segRecord struct {
	tag    mle.Tag
	dead   bool
	blob   int64
	sealed []byte
}

// writeSegment writes records (already sorted ascending by tag) to a
// new segment file and fsyncs it. The caller syncs the directory and
// commits the manifest; until then the file is an orphan that recovery
// deletes.
func writeSegment(path string, records []segRecord) (err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	defer func() {
		// A failed close after a clean sync still means the kernel may
		// not own the data; surface it.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(segMagic); err != nil {
		return err
	}
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(records)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	crc := crc32.New(crcTable)
	var hdr [segRecHeader]byte
	for _, r := range records {
		copy(hdr[:32], r.tag[:])
		hdr[32] = segFlagLive
		if r.dead {
			hdr[32] = segFlagDead
		}
		binary.BigEndian.PutUint32(hdr[33:37], uint32(r.blob))
		binary.BigEndian.PutUint32(hdr[37:41], uint32(len(r.sealed)))
		for _, chunk := range [][]byte{hdr[:], r.sealed} {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
			crc.Write(chunk)
		}
	}
	binary.BigEndian.PutUint32(u32[:], crc.Sum32())
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// openSegment reads and verifies a segment file, building its sparse
// index. It returns the transient full key list so the caller can
// compute live occupancy across segments; the list is discarded after
// open.
func openSegment(path string, id uint64) (*segment, []keyHdr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < segHeaderLen+4 || string(data[:len(segMagic)]) != segMagic {
		return nil, nil, fmt.Errorf("logengine: segment %s: bad header", filepath.Base(path))
	}
	count := int(binary.BigEndian.Uint32(data[len(segMagic):segHeaderLen]))
	body := data[segHeaderLen : len(data)-4]
	wantCRC := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return nil, nil, fmt.Errorf("logengine: segment %s: checksum mismatch (untrusted storage corrupted it)", filepath.Base(path))
	}
	seg := &segment{path: path, id: id, count: count, size: int64(len(data))}
	keys := make([]keyHdr, 0, count)
	off := 0
	var prev mle.Tag
	for i := 0; i < count; i++ {
		if len(body)-off < segRecHeader {
			return nil, nil, fmt.Errorf("logengine: segment %s: truncated record %d", filepath.Base(path), i)
		}
		var tag mle.Tag
		copy(tag[:], body[off:off+32])
		dead := body[off+32] == segFlagDead
		blobSize := int64(binary.BigEndian.Uint32(body[off+33 : off+37]))
		sealedLen := int(binary.BigEndian.Uint32(body[off+37 : off+41]))
		if len(body)-off-segRecHeader < sealedLen {
			return nil, nil, fmt.Errorf("logengine: segment %s: truncated record %d payload", filepath.Base(path), i)
		}
		if i > 0 && bytes.Compare(tag[:], prev[:]) <= 0 {
			return nil, nil, fmt.Errorf("logengine: segment %s: records out of order", filepath.Base(path))
		}
		prev = tag
		if i == 0 {
			seg.minTag = tag
		}
		seg.maxTag = tag
		if i%indexInterval == 0 {
			seg.sparse = append(seg.sparse, indexEntry{tag: tag, off: int64(segHeaderLen + off)})
		}
		keys = append(keys, keyHdr{tag: tag, dead: dead, blobSize: blobSize})
		off += segRecHeader + sealedLen
	}
	if off != len(body) {
		return nil, nil, fmt.Errorf("logengine: segment %s: trailing garbage", filepath.Base(path))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	seg.f = f
	return seg, keys, nil
}

// find locates tag in the segment, returning (sealed payload, found,
// dead). It reads at most indexInterval record headers via the sparse
// index.
func (s *segment) find(tag mle.Tag) (sealed []byte, found, dead bool, err error) {
	if s.count == 0 || bytes.Compare(tag[:], s.minTag[:]) < 0 || bytes.Compare(tag[:], s.maxTag[:]) > 0 {
		return nil, false, false, nil
	}
	// Greatest sparse entry with tag <= target.
	i := sort.Search(len(s.sparse), func(i int) bool {
		return bytes.Compare(s.sparse[i].tag[:], tag[:]) > 0
	}) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	off := s.sparse[i].off
	var hdr [segRecHeader]byte
	for step := 0; step < indexInterval; step++ {
		if off >= s.size-4 {
			return nil, false, false, nil
		}
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			return nil, false, false, fmt.Errorf("logengine: read %s: %w", filepath.Base(s.path), err)
		}
		cmp := bytes.Compare(hdr[:32], tag[:])
		sealedLen := int64(binary.BigEndian.Uint32(hdr[37:41]))
		if cmp > 0 {
			return nil, false, false, nil // sorted: passed the slot
		}
		if cmp == 0 {
			if hdr[32] == segFlagDead {
				return nil, true, true, nil
			}
			payload := make([]byte, sealedLen)
			if _, err := s.f.ReadAt(payload, off+segRecHeader); err != nil {
				return nil, false, false, fmt.Errorf("logengine: read %s: %w", filepath.Base(s.path), err)
			}
			return payload, true, false, nil
		}
		off += segRecHeader + sealedLen
	}
	return nil, false, false, nil
}

// cursor streams a segment's records in tag order for merges and
// iteration, reading one record at a time.
type cursor struct {
	seg *segment
	idx int
	off int64

	tag    mle.Tag
	dead   bool
	blob   int64
	sealed []byte
	valid  bool
}

func (s *segment) newCursor() *cursor {
	c := &cursor{seg: s, off: int64(segHeaderLen)}
	c.next()
	return c
}

// next advances to the following record; valid turns false at the end.
func (c *cursor) next() {
	if c.idx >= c.seg.count {
		c.valid = false
		return
	}
	var hdr [segRecHeader]byte
	if _, err := c.seg.f.ReadAt(hdr[:], c.off); err != nil {
		c.valid = false
		return
	}
	copy(c.tag[:], hdr[:32])
	c.dead = hdr[32] == segFlagDead
	c.blob = int64(binary.BigEndian.Uint32(hdr[33:37]))
	sealedLen := int64(binary.BigEndian.Uint32(hdr[37:41]))
	if sealedLen > 0 {
		c.sealed = make([]byte, sealedLen)
		if _, err := c.seg.f.ReadAt(c.sealed, c.off+segRecHeader); err != nil {
			c.valid = false
			return
		}
	} else {
		c.sealed = nil
	}
	c.off += segRecHeader + sealedLen
	c.idx++
	c.valid = true
}

func (s *segment) close() error {
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}

// --- MANIFEST ---
//
// The manifest is the atomic commit point for every segment-set
// change (flush, compaction). It lists live segment files oldest
// first; a segment file not listed does not exist as far as the
// engine is concerned, so recovery deletes it. The manifest is
// replaced by write-temp + rename + directory fsync — a crash leaves
// either the old or the new list, never a mix.

// writeManifest atomically replaces the manifest with names (oldest
// first) and fsyncs the directory.
func writeManifest(dir string, names []string) error {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(b.String()), 0o600); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readManifest returns the listed segment names, oldest first. A
// missing manifest is an empty store.
func readManifest(dir string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("logengine: bad manifest header")
	}
	var names []string
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		if _, ok := parseSegmentName(l); !ok {
			return nil, fmt.Errorf("logengine: bad manifest entry %q", l)
		}
		names = append(names, l)
	}
	return names, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
