package bench

import (
	"fmt"
	"net"
	"strings"
	"time"

	"speed/internal/dedup"
	"speed/internal/enclave"
	"speed/internal/store"
)

// Resilience exercises the robustness layer of the Runtime↔ResultStore
// path over a real TCP deployment: a healthy phase, a store outage
// (the runtime must degrade to compute-only without surfacing errors),
// and a recovery phase (deduplication must resume). It reports the
// outcome mix plus the degraded/retry counters per phase.

// ResilienceConfig tunes the fault-injection run.
type ResilienceConfig struct {
	// CallsPerPhase is how many Execute calls each phase issues.
	CallsPerPhase int
	// RequestTimeout / MaxRetries configure the RemoteClient.
	RequestTimeout time.Duration
	MaxRetries     int
}

// ResiliencePhase is the measured outcome of one phase.
type ResiliencePhase struct {
	Name     string
	Calls    int
	Errors   int
	Reused   int64
	Computed int64
	Degraded int64
	Retries  int64
	Elapsed  time.Duration
}

// Resilience runs the three phases and returns their measurements.
func Resilience(cfg ResilienceConfig) ([]ResiliencePhase, error) {
	if cfg.CallsPerPhase <= 0 {
		cfg.CallsPerPhase = 50
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 200 * time.Millisecond
	}

	platform := enclave.NewPlatform(enclave.Config{})
	appEnc, err := platform.Create("resilience-app", []byte("resilience app code"))
	if err != nil {
		return nil, err
	}
	storeEnc, err := platform.Create("resilience-store", []byte("resilience store code"))
	if err != nil {
		return nil, err
	}
	st, err := store.New(store.Config{Enclave: storeEnc})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	srv := store.NewServer(st, ln, store.WithLogf(func(string, ...any) {}))
	go func() { _ = srv.Serve() }()

	client, err := dedup.DialConfig(addr, appEnc, storeEnc.Measurement(), dedup.RemoteConfig{
		RequestTimeout: cfg.RequestTimeout,
		MaxRetries:     cfg.MaxRetries,
		RetryBackoff:   10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	rt, err := dedup.NewRuntime(dedup.Config{
		Enclave:          appEnc,
		Client:           client,
		DegradeThreshold: 2,
		ProbeInterval:    50 * time.Millisecond,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rt.Registry().RegisterLibrary("bench", "1.0", []byte("bench lib"))
	id, err := rt.Resolve(dedup.FuncDesc{Library: "bench", Version: "1.0", Signature: "resilience(x)"})
	if err != nil {
		return nil, err
	}

	compute := func(in []byte) ([]byte, error) {
		out := make([]byte, len(in))
		for i, b := range in {
			out[i] = b ^ 0x5A
		}
		return out, nil
	}
	runPhase := func(name string) (ResiliencePhase, error) {
		before := rt.Stats()
		start := time.Now()
		errs := 0
		for i := 0; i < cfg.CallsPerPhase; i++ {
			input := []byte(fmt.Sprintf("resilience-input-%d", i%8))
			if _, _, err := rt.Execute(id, input, compute); err != nil {
				errs++
			}
		}
		after := rt.Stats()
		return ResiliencePhase{
			Name:     name,
			Calls:    cfg.CallsPerPhase,
			Errors:   errs,
			Reused:   after.Reused - before.Reused,
			Computed: after.Computed - before.Computed,
			Degraded: after.Degraded - before.Degraded,
			Retries:  after.Retries - before.Retries,
			Elapsed:  time.Since(start),
		}, nil
	}

	var phases []ResiliencePhase
	p, err := runPhase("healthy")
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)

	// Kill the store mid-run: every call must still succeed.
	if err := srv.Close(); err != nil {
		return nil, err
	}
	p, err = runPhase("store down")
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)

	// Restart on the same address with the same store contents and wait
	// for the background probe to close the breaker.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv2 := store.NewServer(st, ln2, store.WithLogf(func(string, ...any) {}))
	go func() { _ = srv2.Serve() }()
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Degraded() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	p, err = runPhase("recovered")
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)
	return phases, nil
}

// RenderResilience formats the phase table.
func RenderResilience(phases []ResiliencePhase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Store-outage resilience (RemoteClient retry/timeout + runtime circuit breaker)\n")
	fmt.Fprintf(&b, "  %-12s %7s %7s %7s %9s %9s %8s %10s\n",
		"phase", "calls", "errors", "reused", "computed", "degraded", "retries", "elapsed")
	for _, p := range phases {
		fmt.Fprintf(&b, "  %-12s %7d %7d %7d %9d %9d %8d %10s\n",
			p.Name, p.Calls, p.Errors, p.Reused, p.Computed, p.Degraded, p.Retries,
			p.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
