package sift

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// PGM (portable graymap) reading and writing, so example programs and
// tools can exchange images with standard tooling. Both the binary
// (P5) and ASCII (P2) variants are read; P5 is written.

// WritePGM encodes the image as a binary PGM (P5) with 8-bit depth.
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return fmt.Errorf("sift: write pgm header: %w", err)
	}
	row := make([]byte, g.W)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.Pix[y*g.W+x]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[x] = byte(v*255 + 0.5)
		}
		if _, err := bw.Write(row); err != nil {
			return fmt.Errorf("sift: write pgm row: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPGM decodes a P5 (binary) or P2 (ASCII) PGM image, normalizing
// pixels to [0, 1].
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("sift: unsupported pgm magic %q", magic)
	}
	w, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	maxVal, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("sift: unreasonable pgm dimensions %dx%d", w, h)
	}
	if maxVal <= 0 || maxVal > 65535 {
		return nil, fmt.Errorf("sift: bad pgm maxval %d", maxVal)
	}

	img := NewGray(w, h)
	scale := float32(1) / float32(maxVal)
	switch magic {
	case "P5":
		bytesPer := 1
		if maxVal > 255 {
			bytesPer = 2
		}
		buf := make([]byte, w*h*bytesPer)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("sift: short pgm pixel data: %w", err)
		}
		for i := 0; i < w*h; i++ {
			var v int
			if bytesPer == 2 {
				v = int(buf[2*i])<<8 | int(buf[2*i+1])
			} else {
				v = int(buf[i])
			}
			img.Pix[i] = float32(v) * scale
		}
	case "P2":
		for i := 0; i < w*h; i++ {
			v, err := pgmInt(br)
			if err != nil {
				return nil, fmt.Errorf("sift: pgm pixel %d: %w", i, err)
			}
			img.Pix[i] = float32(v) * scale
		}
	}
	return img, nil
}

// pgmToken reads the next whitespace-delimited token, skipping
// '#'-comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		c, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", fmt.Errorf("sift: pgm token: %w", err)
		}
		switch {
		case c == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", fmt.Errorf("sift: pgm comment: %w", err)
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, c)
		}
	}
}

func pgmInt(br *bufio.Reader) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("sift: pgm number %q: %v", tok, err)
	}
	return v, nil
}
