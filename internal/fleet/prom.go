// Package fleet assembles a cluster-wide view of a SPEED deployment
// from each member's telemetry endpoints: /metrics scraped in the
// Prometheus text exposition format and /debug/trace rings merged into
// cross-node distributed traces. It is the library behind cmd/speedtop
// and deliberately understands only what the console needs — sample
// lines and cumulative le-buckets — rather than the full exposition
// grammar.
package fleet

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric family name, its raw
// label block (the text between the braces, "" when absent) and the
// value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Metrics is every sample scraped from one /metrics endpoint, grouped
// by family name.
type Metrics map[string][]Sample

// ParseProm parses a Prometheus text-format (0.0.4) exposition.
// Comment and malformed lines are skipped — a scrape is a best-effort
// snapshot, not a validation pass.
func ParseProm(r io.Reader) (Metrics, error) {
	m := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if s, ok := parseLine(sc.Text()); ok {
			m[s.Name] = append(m[s.Name], s)
		}
	}
	return m, sc.Err()
}

// parseLine splits one "name{labels} value" or "name value" line.
func parseLine(line string) (Sample, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Sample{}, false
	}
	var s Sample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return Sample{}, false
		}
		s.Name, s.Labels, rest = line[:i], line[i+1:j], line[j+1:]
	} else if k := strings.IndexAny(line, " \t"); k >= 0 {
		s.Name, rest = line[:k], line[k:]
	} else {
		return Sample{}, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return Sample{}, false
	}
	s.Value = v
	return s, true
}

// labelValue extracts one label's (unquoted) value from a raw label
// block.
func labelValue(labels, key string) (string, bool) {
	needle := key + "=\""
	for pos := 0; pos < len(labels); {
		idx := strings.Index(labels[pos:], needle)
		if idx < 0 {
			return "", false
		}
		start := pos + idx
		if start > 0 && labels[start-1] != ',' && labels[start-1] != ' ' {
			pos = start + len(needle)
			continue
		}
		val := labels[start+len(needle):]
		end := -1
		for i := 0; i < len(val); i++ {
			if val[i] == '\\' {
				i++
				continue
			}
			if val[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", false
		}
		if unq, err := strconv.Unquote(`"` + val[:end] + `"`); err == nil {
			return unq, true
		}
		return val[:end], true
	}
	return "", false
}

// Sum adds a family's value across every label set (0 when the family
// is absent). For counters this folds per-app or per-op variants into
// one fleet-level number.
func (m Metrics) Sum(family string) float64 {
	var total float64
	for _, s := range m[family] {
		total += s.Value
	}
	return total
}

// Has reports whether the family appeared in the scrape at all.
func (m Metrics) Has(family string) bool { return len(m[family]) > 0 }

// Quantile estimates the q-quantile in seconds of a histogram family
// from its cumulative _bucket samples, merged across label sets. The
// answer is the upper bound of the bucket containing the target rank —
// the same one-bucket resolution the exposition itself has. It returns
// false when the family has no buckets or no observations.
func (m Metrics) Quantile(family string, q float64) (float64, bool) {
	cum := make(map[float64]float64)
	for _, s := range m[family+"_bucket"] {
		raw, ok := labelValue(s.Labels, "le")
		if !ok {
			continue
		}
		le := math.Inf(1)
		if raw != "+Inf" {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				continue
			}
			le = v
		}
		cum[le] += s.Value
	}
	if len(cum) == 0 {
		return 0, false
	}
	les := make([]float64, 0, len(cum))
	for le := range cum {
		les = append(les, le)
	}
	sort.Float64s(les)
	total := cum[les[len(les)-1]]
	if total == 0 {
		return 0, false
	}
	target := math.Ceil(q * total)
	if target < 1 {
		target = 1
	}
	for _, le := range les {
		if cum[le] >= target {
			if math.IsInf(le, 1) {
				// Everything above the last finite bucket: report that
				// bound as a floor rather than infinity.
				if len(les) > 1 {
					return les[len(les)-2], true
				}
				return 0, false
			}
			return le, true
		}
	}
	return les[len(les)-1], true
}
