package sift

import "math"

// Sub-pixel extremum refinement (Brown & Lowe): fit a 3D quadratic to
// the DoG values around a discrete extremum and solve for the offset
// where the derivative vanishes. Offsets beyond half a pixel move the
// candidate; candidates that fail to converge or whose interpolated
// contrast is too low are rejected.

// refineResult is the outcome of sub-pixel refinement.
type refineResult struct {
	// x, y are the refined coordinates within the octave; level the
	// refined scale level (both fractional).
	x, y, level float64
	// value is the interpolated DoG response at the refined extremum.
	value float64
	// ok reports whether refinement converged within bounds.
	ok bool
}

const maxRefineSteps = 5

// refineExtremum iterates the quadratic fit, moving the discrete
// candidate when the offset exceeds half a unit in any dimension.
// dogs is one octave's DoG stack; (x, y, s) the discrete candidate.
func refineExtremum(dogs []*Gray, x, y, s int) refineResult {
	for step := 0; step < maxRefineSteps; step++ {
		if s < 1 || s >= len(dogs)-1 {
			return refineResult{}
		}
		cur := dogs[s]
		if x < 1 || x >= cur.W-1 || y < 1 || y >= cur.H-1 {
			return refineResult{}
		}
		g, h := dogDerivatives(dogs, x, y, s)
		delta, solved := solve3(h, [3]float64{-g[0], -g[1], -g[2]})
		if !solved {
			return refineResult{}
		}
		if math.Abs(delta[0]) <= 0.5 && math.Abs(delta[1]) <= 0.5 && math.Abs(delta[2]) <= 0.5 {
			value := float64(cur.Pix[y*cur.W+x]) +
				0.5*(g[0]*delta[0]+g[1]*delta[1]+g[2]*delta[2])
			return refineResult{
				x:     float64(x) + delta[0],
				y:     float64(y) + delta[1],
				level: float64(s) + delta[2],
				value: value,
				ok:    true,
			}
		}
		// Move toward the true extremum and retry.
		x += clampStep(delta[0])
		y += clampStep(delta[1])
		s += clampStep(delta[2])
	}
	return refineResult{}
}

func clampStep(d float64) int {
	switch {
	case d > 0.5:
		return 1
	case d < -0.5:
		return -1
	default:
		return 0
	}
}

// dogDerivatives computes the gradient and Hessian of the DoG function
// at (x, y, s) by central differences; ordering is (x, y, scale).
func dogDerivatives(dogs []*Gray, x, y, s int) (grad [3]float64, hess [3][3]float64) {
	at := func(dx, dy, ds int) float64 {
		return float64(dogs[s+ds].At(x+dx, y+dy))
	}
	grad[0] = (at(1, 0, 0) - at(-1, 0, 0)) / 2
	grad[1] = (at(0, 1, 0) - at(0, -1, 0)) / 2
	grad[2] = (at(0, 0, 1) - at(0, 0, -1)) / 2

	c := at(0, 0, 0)
	hess[0][0] = at(1, 0, 0) + at(-1, 0, 0) - 2*c
	hess[1][1] = at(0, 1, 0) + at(0, -1, 0) - 2*c
	hess[2][2] = at(0, 0, 1) + at(0, 0, -1) - 2*c
	hess[0][1] = (at(1, 1, 0) - at(1, -1, 0) - at(-1, 1, 0) + at(-1, -1, 0)) / 4
	hess[0][2] = (at(1, 0, 1) - at(1, 0, -1) - at(-1, 0, 1) + at(-1, 0, -1)) / 4
	hess[1][2] = (at(0, 1, 1) - at(0, 1, -1) - at(0, -1, 1) + at(0, -1, -1)) / 4
	hess[1][0] = hess[0][1]
	hess[2][0] = hess[0][2]
	hess[2][1] = hess[1][2]
	return grad, hess
}

// solve3 solves A*x = b for a symmetric 3x3 system with partial
// pivoting; solved is false when A is (near-)singular.
func solve3(a [3][3]float64, b [3]float64) (x [3]float64, solved bool) {
	const eps = 1e-12
	// Augment and eliminate.
	m := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < eps {
			return x, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, true
}
